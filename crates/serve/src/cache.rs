//! Sharded LRU plan cache with single-flight computation.
//!
//! Plans are keyed by `(model fingerprint, epoch, n, algorithm)` — exactly
//! the inputs a partition depends on, so a hit is guaranteed bit-identical
//! to recomputation. The epoch is the registry's refinement counter: every
//! accepted `report` bumps it, so plans computed against a pre-refinement
//! model can never be served for the refined one even in the (already
//! astronomically unlikely) event of a fingerprint collision between two
//! epochs of the same cluster. The cache is split into [`SHARDS`] independent
//! mutex-protected shards (key-hash selects the shard) so concurrent
//! requests for different clusters never contend.
//!
//! **Single-flight:** when several requests race on the same cold key,
//! exactly one computes; the rest block on a condvar and receive the
//! winner's result ([`CacheStatus::Coalesced`]). A drop-guard publishes an
//! internal error if the computing closure panics, so waiters can never
//! hang. Errors are cached too — a cluster/size combination that cannot be
//! solved keeps failing without re-burning CPU.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use crate::protocol::ProtoError;

/// Number of independent shards (power of two).
pub const SHARDS: usize = 16;

/// Cache key: everything a plan depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model-set fingerprint (already a hash, used for shard selection).
    pub fingerprint: u64,
    /// Registry refinement epoch of the cluster the plan was solved
    /// against; a `report` that re-fits a model bumps it.
    pub epoch: u64,
    /// Problem size.
    pub n: u64,
    /// Algorithm tag from [`fpm_core::planner::AlgorithmId::key_tag`].
    pub algo: (u8, u64),
}

impl PlanKey {
    fn shard(&self) -> usize {
        // The fingerprint is FNV output, already well mixed; fold in n and
        // the epoch so many sizes (and successive refinements) of one
        // cluster spread across shards.
        ((self.fingerprint
            ^ self.n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.epoch.wrapping_mul(0xD1B5_4A32_D192_ED03)) as usize)
            & (SHARDS - 1)
    }
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache.
    Hit,
    /// This request computed the value.
    Miss,
    /// Another in-flight request computed it; this one waited.
    Coalesced,
}

/// The cached value: a solved plan or a stable error.
pub type PlanResult = Result<Arc<crate::engine::Plan>, ProtoError>;

struct Entry {
    value: PlanResult,
    gen: u64,
}

struct Inflight {
    slot: Mutex<Option<PlanResult>>,
    done: Condvar,
}

struct Shard {
    map: HashMap<PlanKey, Entry>,
    /// Lazy LRU: keys are pushed on every touch; stale duplicates are
    /// skipped at eviction by comparing generations, and the queue is
    /// compacted when it outgrows 8× capacity.
    order: VecDeque<(PlanKey, u64)>,
    gen: u64,
    inflight: HashMap<PlanKey, Arc<Inflight>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            gen: 0,
            inflight: HashMap::new(),
        }
    }

    fn touch(&mut self, key: PlanKey, cap: usize) {
        self.gen += 1;
        let gen = self.gen;
        if let Some(e) = self.map.get_mut(&key) {
            e.gen = gen;
        }
        self.order.push_back((key, gen));
        if self.order.len() > 8 * cap.max(1) {
            let map = &self.map;
            self.order.retain(|(k, g)| map.get(k).is_some_and(|e| e.gen == *g));
        }
    }

    fn insert(&mut self, key: PlanKey, value: PlanResult, cap: usize) {
        self.map.insert(key, Entry { value, gen: 0 });
        self.touch(key, cap);
        while self.map.len() > cap {
            let Some((victim, gen)) = self.order.pop_front() else { break };
            if self.map.get(&victim).is_some_and(|e| e.gen == gen) {
                self.map.remove(&victim);
            }
        }
    }
}

/// Publishes a panic-substitute result if the computing thread unwinds
/// before storing a real one.
struct FlightGuard<'a> {
    cache: &'a PlanCache,
    key: PlanKey,
    flight: Arc<Inflight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.publish(
                self.key,
                &self.flight,
                Err(ProtoError::new("internal", "plan computation panicked")),
                false,
            );
        }
    }
}

/// The sharded single-flight plan cache.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl PlanCache {
    /// Creates a cache holding about `capacity` plans in total.
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect();
        Self { shards, capacity_per_shard }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[key.shard()]
    }

    /// Non-blocking lookup: a resident key touches the LRU and returns a
    /// clone; a cold key — or one still being computed by an in-flight
    /// request — returns `None` immediately, **never** waiting on the
    /// flight. This is the event loop's warm path: it must answer other
    /// connections while a solve is in progress.
    pub fn probe(&self, key: &PlanKey) -> Option<PlanResult> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let value = shard.map.get(key)?.value.clone();
        let cap = self.capacity_per_shard;
        shard.touch(*key, cap);
        Some(value)
    }

    /// Looks `key` up; on a cold key, runs `compute` exactly once across
    /// all racing callers (the rest block until the winner publishes).
    ///
    /// `compute` runs **without** any shard lock held.
    pub fn get_or_compute(
        &self,
        key: PlanKey,
        compute: impl FnOnce() -> PlanResult,
    ) -> (PlanResult, CacheStatus) {
        // Fast path + flight admission under the shard lock.
        let flight = {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            if let Some(entry) = shard.map.get(&key) {
                let value = entry.value.clone();
                let cap = self.capacity_per_shard;
                shard.touch(key, cap);
                return (value, CacheStatus::Hit);
            }
            match shard.inflight.get(&key) {
                Some(flight) => {
                    // Someone else is computing: wait on their flight.
                    let flight = Arc::clone(flight);
                    drop(shard);
                    let mut slot = flight.slot.lock().expect("inflight slot poisoned");
                    while slot.is_none() {
                        slot = flight.done.wait(slot).expect("inflight slot poisoned");
                    }
                    let value = slot.clone().expect("checked above");
                    return (value, CacheStatus::Coalesced);
                }
                None => {
                    let flight = Arc::new(Inflight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    shard.inflight.insert(key, Arc::clone(&flight));
                    flight
                }
            }
        };
        // We are the computing flight. The guard guarantees publication
        // even if `compute` panics.
        let mut guard = FlightGuard { cache: self, key, flight, armed: true };
        let value = compute();
        guard.armed = false;
        self.publish(key, &guard.flight, value.clone(), true);
        (value, CacheStatus::Miss)
    }

    /// Stores the result, removes the inflight marker and wakes waiters.
    fn publish(&self, key: PlanKey, flight: &Arc<Inflight>, value: PlanResult, cache_it: bool) {
        {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            if cache_it {
                let cap = self.capacity_per_shard;
                shard.insert(key, value.clone(), cap);
            }
            shard.inflight.remove(&key);
        }
        let mut slot = flight.slot.lock().expect("inflight slot poisoned");
        *slot = Some(value);
        flight.done.notify_all();
    }

    /// Finds a donor plan for warm-starting: the successfully solved entry
    /// with the same `(fingerprint, epoch, algo)` whose size is nearest to
    /// `n`. An exact-`n` entry is allowed — the caller asks for the
    /// *current* epoch only after that exact key missed (single-flight
    /// guarantees it stays absent while the flight computes), and for the
    /// *previous* epoch the same-`n` pre-refit plan is the ideal seed.
    ///
    /// Scans every shard: sibling sizes of one cluster deliberately hash to
    /// different shards. This is miss-path-only work over at most
    /// `capacity` entries, far cheaper than the cold solve it replaces.
    pub fn donor(
        &self,
        fingerprint: u64,
        epoch: u64,
        algo: (u8, u64),
        n: u64,
    ) -> Option<Arc<crate::engine::Plan>> {
        let mut best: Option<(u64, Arc<crate::engine::Plan>)> = None;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for (key, entry) in &shard.map {
                if key.fingerprint != fingerprint || key.epoch != epoch || key.algo != algo {
                    continue;
                }
                let Ok(plan) = &entry.value else { continue };
                let dist = key.n.abs_diff(n);
                let closer = match &best {
                    Some((d, _)) => dist < *d,
                    None => true,
                };
                if closer {
                    best = Some((dist, Arc::clone(plan)));
                }
            }
        }
        best.map(|(_, plan)| plan)
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Plan;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(fp: u64, n: u64) -> PlanKey {
        PlanKey { fingerprint: fp, epoch: 0, n, algo: (0, 0) }
    }

    fn plan(n: u64) -> PlanResult {
        Ok(Arc::new(Plan::new(vec![n], n as f64, 1)))
    }

    #[test]
    fn miss_then_hit() {
        let cache = PlanCache::new(64);
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            plan(7)
        };
        let (v1, s1) = cache.get_or_compute(key(1, 7), compute);
        assert_eq!(s1, CacheStatus::Miss);
        let (v2, s2) = cache.get_or_compute(key(1, 7), || unreachable!());
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(v1.unwrap().counts, v2.unwrap().counts);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = PlanCache::new(64);
        let _ = cache.get_or_compute(key(1, 7), || plan(7));
        let (_, s) = cache.get_or_compute(key(1, 8), || plan(8));
        assert_eq!(s, CacheStatus::Miss);
        let (_, s) = cache.get_or_compute(key(2, 7), || plan(7));
        assert_eq!(s, CacheStatus::Miss);
        let (_, s) = cache.get_or_compute(
            PlanKey { fingerprint: 1, epoch: 0, n: 7, algo: (3, 42) },
            || plan(7),
        );
        assert_eq!(s, CacheStatus::Miss);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn epochs_of_one_model_never_share_a_key() {
        // Same fingerprint, size and algorithm but a bumped epoch must be
        // a distinct key: a refined model can never be served a stale plan.
        let cache = PlanCache::new(64);
        for epoch in 0..8 {
            let k = PlanKey { fingerprint: 42, epoch, n: 7, algo: (0, 0) };
            let (_, s) = cache.get_or_compute(k, || plan(epoch));
            assert_eq!(s, CacheStatus::Miss, "epoch {epoch} must be a fresh key");
        }
        assert_eq!(cache.len(), 8);
        // And each epoch's entry still round-trips its own plan.
        for epoch in 0..8 {
            let k = PlanKey { fingerprint: 42, epoch, n: 7, algo: (0, 0) };
            let (v, s) = cache.get_or_compute(k, || unreachable!());
            assert_eq!(s, CacheStatus::Hit);
            assert_eq!(v.unwrap().counts, vec![epoch]);
        }
    }

    #[test]
    fn errors_are_cached() {
        let cache = PlanCache::new(64);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, _) = cache.get_or_compute(key(9, 9), || {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(ProtoError::new("solve_failed", "no"))
            });
            assert_eq!(v.unwrap_err().code, "solve_failed");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        // Single logical slot per shard: inserting two keys that land in
        // the same shard must evict the older one.
        let cache = PlanCache::new(1);
        // Find two keys in the same shard.
        let k1 = key(0, 0);
        let mut k2 = key(0, 1);
        for n in 1..10_000 {
            k2 = key(0, n);
            if k2.shard() == k1.shard() {
                break;
            }
        }
        assert_eq!(k1.shard(), k2.shard());
        let _ = cache.get_or_compute(k1, || plan(1));
        let _ = cache.get_or_compute(k2, || plan(2));
        // k1 was evicted: recompute happens.
        let (_, s) = cache.get_or_compute(k1, || plan(1));
        assert_eq!(s, CacheStatus::Miss);
    }

    #[test]
    fn touch_keeps_hot_keys_alive() {
        let cache = PlanCache::new(1);
        let k1 = key(0, 0);
        let (mut k2, mut k3) = (k1, k1);
        let mut found = 0;
        for n in 1..100_000 {
            let k = key(0, n);
            if k.shard() == k1.shard() {
                if found == 0 {
                    k2 = k;
                } else {
                    k3 = k;
                    break;
                }
                found += 1;
            }
        }
        assert_eq!(k3.shard(), k1.shard());
        let _ = cache.get_or_compute(k1, || plan(1));
        let _ = cache.get_or_compute(k2, || plan(2)); // evicts k1 (cap 1/shard)
        let _ = cache.get_or_compute(k2, || unreachable!()); // touch k2
        let _ = cache.get_or_compute(k3, || plan(3)); // evicts something ≠ k2
        let (_, s) = cache.get_or_compute(k2, || plan(2));
        assert!(
            s == CacheStatus::Hit || s == CacheStatus::Miss,
            "status {s:?}"
        );
    }

    #[test]
    fn probe_never_blocks_on_inflight_computation() {
        let cache = Arc::new(PlanCache::new(64));
        assert!(cache.probe(&key(1, 7)).is_none(), "cold probe misses");
        let _ = cache.get_or_compute(key(1, 7), || plan(7));
        assert_eq!(cache.probe(&key(1, 7)).unwrap().unwrap().counts, vec![7]);

        // While a flight is computing, probing the same key must return
        // None immediately instead of joining the waiters.
        let started = Arc::new(std::sync::Barrier::new(2));
        let c2 = Arc::clone(&cache);
        let s2 = Arc::clone(&started);
        let worker = std::thread::spawn(move || {
            c2.get_or_compute(key(2, 2), || {
                s2.wait();
                std::thread::sleep(std::time::Duration::from_millis(50));
                plan(2)
            })
        });
        started.wait();
        let t0 = std::time::Instant::now();
        assert!(cache.probe(&key(2, 2)).is_none());
        assert!(t0.elapsed() < std::time::Duration::from_millis(40), "probe blocked");
        worker.join().unwrap().0.unwrap();
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        let cache = Arc::new(PlanCache::new(64));
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let (v, status) = cache.get_or_compute(key(5, 5), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for others to pile up.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    plan(5)
                });
                (v.unwrap().makespan, status)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.iter().all(|(m, _)| *m == 5.0));
        let misses = results.iter().filter(|(_, s)| *s == CacheStatus::Miss).count();
        assert_eq!(misses, 1);
    }

    #[test]
    fn donor_finds_nearest_n_across_shards() {
        let cache = PlanCache::new(64);
        for n in [100u64, 200, 1000, 5000] {
            let _ = cache.get_or_compute(key(1, n), || plan(n));
        }
        // Other fingerprints/algorithms/epochs must never donate.
        let _ = cache.get_or_compute(key(2, 201), || plan(201));
        let _ = cache.get_or_compute(
            PlanKey { fingerprint: 1, epoch: 1, n: 202, algo: (0, 0) },
            || plan(202),
        );
        let _ = cache.get_or_compute(
            PlanKey { fingerprint: 1, epoch: 0, n: 203, algo: (2, 0) },
            || plan(203),
        );
        let donor = cache.donor(1, 0, (0, 0), 210).expect("donor expected");
        assert_eq!(donor.counts, vec![200], "nearest-n donor is 200");
        // An exact-n match wins outright: the previous-epoch lookup relies
        // on same-size pre-refit plans being eligible seeds.
        assert_eq!(cache.donor(1, 0, (0, 0), 200).unwrap().counts, vec![200]);
        assert!(cache.donor(9, 0, (0, 0), 210).is_none(), "unknown fingerprint");
    }

    #[test]
    fn donor_skips_cached_errors() {
        let cache = PlanCache::new(64);
        let _ = cache.get_or_compute(key(1, 100), || Err(ProtoError::new("solve_failed", "no")));
        assert!(cache.donor(1, 0, (0, 0), 101).is_none());
        let _ = cache.get_or_compute(key(1, 300), || plan(300));
        assert_eq!(cache.donor(1, 0, (0, 0), 101).unwrap().counts, vec![300]);
    }

    #[test]
    fn panicking_compute_releases_waiters_with_internal_error() {
        let cache = Arc::new(PlanCache::new(64));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(key(13, 13), || panic!("boom"))
            }));
            assert!(result.is_err());
        });
        panicker.join().unwrap();
        // The flight is gone and the error was NOT cached: next caller
        // recomputes cleanly.
        let (v, s) = cache.get_or_compute(key(13, 13), || plan(13));
        assert_eq!(s, CacheStatus::Miss);
        assert!(v.is_ok());
    }
}
