//! # fpm-exec — execution engines
//!
//! Ties the partitioning algorithms ([`fpm_core`]), the simulated network
//! ([`fpm_simnet`]) and the linear-algebra kernels ([`fpm_kernels`])
//! together into runnable experiments:
//!
//! * [`cluster`] — a simulated heterogeneous cluster: named machines with
//!   per-application speed functions;
//! * [`mm_run`] — simulated parallel matrix multiplication under striped
//!   partitioning (paper Fig. 16);
//! * [`lu_run`] — step-by-step simulated parallel LU factorisation under a
//!   column-block distribution (paper Fig. 17), re-querying speeds at each
//!   step's shrinking problem size;
//! * [`model_build`] — building piece-wise linear cluster models from
//!   noisy simulated measurements (paper §3.1);
//! * [`host`] — real multi-threaded execution on the host machine;
//! * [`pool`] — the persistent worker pool backing the host executor, the
//!   cluster model builder and the parallel speed sweeps.
//!
//! The cost model charges computation only: the paper explicitly excludes
//! communication cost from its scope (§1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod comm;
pub mod des;
pub mod dynamic;
pub mod host;
pub mod lu_run;
pub mod mm_run;
pub mod model_build;
pub mod pool;

pub use cluster::SimCluster;
pub use comm::{partition_mm_with_comm, CommAwareResult, CommLink};
pub use des::{simulate_mm_des, DesOutcome, ServeOrder, Timeline};
pub use dynamic::{simulate_dynamic_mm, DynamicSpeed, LoadEvent, Strategy};
pub use host::MeasureConfig;
pub use lu_run::{simulate_lu, simulate_lu_par, LuRunResult};
pub use mm_run::{simulate_mm, simulate_mm_par, simulate_mm_with_distribution, MmRunResult};
pub use pool::{scoped_map, WorkerPool};
