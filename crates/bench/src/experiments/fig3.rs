//! Fig. 3: why a single point cannot represent a processor — choosing the
//! speeds at one problem size gives a distribution that is wrong (possibly
//! inverted) at another.
//!
//! Two processors run the naive matrix multiplication; their relative
//! speed changes with problem size because one pages much earlier. The
//! experiment partitions with single numbers sampled at a small and a
//! large size and reports the resulting makespans against the functional
//! optimum.

use fpm_core::partition::{CombinedPartitioner, Partitioner, SingleNumberPartitioner};
use fpm_core::speed::{AnalyticSpeed, SpeedFunction};

use crate::report::{fnum, Report};

/// Two machines whose relative speed inverts with size: machine A is 2×
/// faster while everything fits, but pages at 2e6 elements; machine B is
/// slower and steady.
pub fn two_processors() -> Vec<AnalyticSpeed> {
    vec![
        AnalyticSpeed::unimodal(200.0, 1e4, 2e6, 3.0),
        AnalyticSpeed::decreasing(100.0, 5e7, 1.5),
    ]
}

/// Runs the mispartition demonstration.
pub fn run() -> Report {
    let funcs = two_processors();
    let mut r = Report::new(
        "fig3",
        "Single-number distributions are wrong away from their sampling point (paper Fig. 3)",
        &["n (elements)", "model", "x0", "x1", "makespan (s)", "vs optimal"],
    );
    for &n in &[400_000u64, 4_000_000, 40_000_000] {
        let optimal = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        for (label, report) in [
            ("functional", optimal.clone()),
            (
                "single@1e5",
                SingleNumberPartitioner::at_size(1e5).partition(n, &funcs).unwrap(),
            ),
            (
                "single@2e7",
                SingleNumberPartitioner::at_size(2e7).partition(n, &funcs).unwrap(),
            ),
        ] {
            r.push_row(vec![
                n.to_string(),
                label.to_owned(),
                report.distribution.counts()[0].to_string(),
                report.distribution.counts()[1].to_string(),
                fnum(report.makespan, 3),
                fnum(report.makespan / optimal.makespan, 2),
            ]);
        }
    }
    // Relative speed inversion for the note.
    let s_small = funcs[0].speed(2e5) / funcs[1].speed(2e5);
    let s_large = funcs[0].speed(2e7) / funcs[1].speed(2e7);
    r.note(format!(
        "relative speed A/B is {:.2} at 2e5 elements but {:.2} at 2e7 — no single number is right at both",
        s_small, s_large
    ));
    r.note("expected: each single-number variant is near-optimal at its own sampling regime and pays up to several× elsewhere");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_speed_inverts() {
        let funcs = two_processors();
        assert!(funcs[0].speed(2e5) > funcs[1].speed(2e5));
        assert!(funcs[0].speed(2e7) < funcs[1].speed(2e7));
    }

    #[test]
    fn wrong_point_costs_time() {
        let r = run();
        // At n = 4e7 the small-size single-number model must be noticeably
        // worse than the functional optimum.
        let row = r
            .rows
            .iter()
            .find(|row| row[0] == "40000000" && row[1] == "single@1e5")
            .expect("row exists");
        let ratio: f64 = row[5].parse().unwrap();
        assert!(ratio > 1.1, "mispartition should cost ≥10 %: ratio {ratio}");
    }

    #[test]
    fn functional_rows_are_optimal() {
        let r = run();
        for row in r.rows.iter().filter(|row| row[1] == "functional") {
            let ratio: f64 = row[5].parse().unwrap();
            assert!((ratio - 1.0).abs() < 1e-9);
        }
    }
}
