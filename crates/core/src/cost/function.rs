//! The [`CostFunction`] trait and the blanket adapter from
//! [`SpeedFunction`].

use crate::speed::SpeedFunction;

/// Execution-time model of a single processor: `time(x)` is the wall
/// time the machine needs to process `x` elements.
///
/// This is the time-domain restatement of the paper's functional
/// performance model. The paper assumes each speed function `s(x)` has
/// the *single-intersection* shape: any line through the origin cuts
/// the curve `y = s(x)` at most once, which is equivalent to
/// `s(x)/x` being strictly decreasing. Substituting
/// `time(x) = x / s(x)` turns that into the invariant this trait
/// requires:
///
/// * **`time` is strictly increasing** on `(0, max_size())` — more
///   elements never finish sooner;
/// * **`time` is positive and continuous** there (linear time, i.e.
///   constant speed, is admissible: the invariant is on `time`, not on
///   its curvature);
/// * consequently [`rate`](CostFunction::rate)` = 1 / time(x)` — the
///   slope of the origin line through `(x, throughput(x))` — is
///   strictly decreasing, which is exactly what the solvers' slope
///   bisection needs: the root of `rate(x) = c` is unique.
///
/// Every [`SpeedFunction`] is a `CostFunction` through a blanket
/// adapter with `time(x) = x / speed(x)`; the adapter forwards
/// closed-form intersections so speed-backed solves take the identical
/// floating-point path they took before the cost generalisation.
pub trait CostFunction {
    /// Wall time to process `x` elements.
    ///
    /// Must be strictly increasing, positive, and continuous on
    /// `(0, max_size())`. `time(x)` for `x <= 0` should be `0.0`.
    fn time(&self, x: f64) -> f64;

    /// Largest problem size this machine can take (e.g. before memory
    /// exhaustion). Defaults to unbounded.
    fn max_size(&self) -> f64 {
        f64::INFINITY
    }

    /// Effective processing speed at size `x`: `x / time(x)`, in
    /// elements per unit time.
    ///
    /// For speed-backed models the blanket adapter overrides this to
    /// return `speed(x)` directly, so no extra division is introduced
    /// on the legacy path.
    fn throughput(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let t = self.time(x);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            x / t
        }
    }

    /// Slope of the origin line through `(x, throughput(x))`, i.e.
    /// `throughput(x) / x = 1 / time(x)`.
    ///
    /// This is the quantity the solvers bisect on: by the trait
    /// invariant it is strictly decreasing in `x`, so `rate(x) = c`
    /// has at most one root.
    fn rate(&self, x: f64) -> f64 {
        self.throughput(x) / x
    }

    /// Closed-form solution of `rate(x) = slope` (equivalently
    /// `time(x) = 1/slope`), if this model has one. `None` sends the
    /// solvers down the numeric bracketing path.
    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        let _ = slope;
        None
    }
}

/// Every speed function is a cost function with `time(x) = x / speed(x)`.
///
/// The overrides are chosen so that a solver rewritten against
/// `CostFunction` performs the *identical* floating-point operation
/// sequence the speed-domain solver performed:
///
/// * `throughput(x)` is `speed(x)` — no detour through `time`;
/// * `rate(x)` (the default `throughput(x) / x`) is therefore the
///   literal `speed(x) / x` every legacy call site computed;
/// * `time` and `intersect_slope` forward to the speed-domain
///   implementations, preserving closed forms and guards.
impl<F: SpeedFunction + ?Sized> CostFunction for F {
    fn time(&self, x: f64) -> f64 {
        SpeedFunction::time(self, x)
    }

    fn max_size(&self) -> f64 {
        SpeedFunction::max_size(self)
    }

    fn throughput(&self, x: f64) -> f64 {
        self.speed(x)
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        SpeedFunction::intersect_slope(self, slope)
    }
}

/// Forwarding impl so erased `&dyn CostFunction` elements satisfy
/// `F: CostFunction` bounds (mirrors the `&T` forwarding impl on
/// [`SpeedFunction`]; a generic `&T` impl would overlap the blanket
/// adapter, but `dyn CostFunction` itself is not a `SpeedFunction`, so
/// this specific impl is coherent).
impl<'a> CostFunction for &'a (dyn CostFunction + 'a) {
    fn time(&self, x: f64) -> f64 {
        (**self).time(x)
    }

    fn max_size(&self) -> f64 {
        (**self).max_size()
    }

    fn throughput(&self, x: f64) -> f64 {
        (**self).throughput(x)
    }

    fn rate(&self, x: f64) -> f64 {
        (**self).rate(x)
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        (**self).intersect_slope(slope)
    }
}

/// Same forwarding for the thread-safe erased form used by the serving
/// layer (`Arc<dyn CostFunction + Send + Sync>` borrows to this).
impl<'a> CostFunction for &'a (dyn CostFunction + Send + Sync + 'a) {
    fn time(&self, x: f64) -> f64 {
        (**self).time(x)
    }

    fn max_size(&self) -> f64 {
        (**self).max_size()
    }

    fn throughput(&self, x: f64) -> f64 {
        (**self).throughput(x)
    }

    fn rate(&self, x: f64) -> f64 {
        (**self).rate(x)
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        (**self).intersect_slope(slope)
    }
}

/// Validates the time-domain shape invariant on a log-spaced sample
/// grid: `time` must be (weakly, up to rounding) increasing and
/// positive across `[lo, hi]`.
///
/// The cost-domain analog of
/// [`check_single_intersection`](crate::speed::check_single_intersection):
/// returns `Err(x)` with the first offending sample point.
pub fn check_increasing_time<F: CostFunction + ?Sized>(
    f: &F,
    lo: f64,
    hi: f64,
    samples: usize,
) -> Result<(), f64> {
    assert!(lo > 0.0 && hi > lo && samples >= 2, "bad sample grid");
    let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
    let mut prev_t = 0.0f64;
    for i in 0..samples {
        let frac = i as f64 / (samples - 1) as f64;
        let x = (ln_lo + frac * (ln_hi - ln_lo)).exp();
        let t = f.time(x);
        if t.is_nan() || t <= 0.0 || t < prev_t * (1.0 - 1e-9) {
            return Err(x);
        }
        prev_t = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    /// A pure cost model (no SpeedFunction impl): time(x) = x^2 / k.
    struct QuadraticCost {
        k: f64,
    }

    impl CostFunction for QuadraticCost {
        fn time(&self, x: f64) -> f64 {
            if x <= 0.0 {
                0.0
            } else {
                x * x / self.k
            }
        }
    }

    #[test]
    fn blanket_adapter_matches_speed_domain_bitwise() {
        let f = AnalyticSpeed::decreasing(80.0, 1.0e6, 1.4);
        for &x in &[1.0, 17.0, 1.0e3, 3.7e6, 9.9e8] {
            use crate::speed::SpeedFunction as _;
            let s = f.speed(x);
            assert_eq!(CostFunction::throughput(&f, x).to_bits(), s.to_bits());
            assert_eq!(CostFunction::rate(&f, x).to_bits(), (s / x).to_bits());
            assert_eq!(
                CostFunction::time(&f, x).to_bits(),
                SpeedFunction::time(&f, x).to_bits()
            );
        }
    }

    #[test]
    fn blanket_adapter_forwards_closed_forms() {
        let f = ConstantSpeed::new(250.0);
        let x = CostFunction::intersect_slope(&f, 0.5).expect("constant speed has a closed form");
        assert_eq!(x.to_bits(), (250.0f64 / 0.5).to_bits());
    }

    #[test]
    fn pure_cost_model_derives_throughput_and_rate() {
        let f = QuadraticCost { k: 100.0 };
        // time(10) = 1.0 → throughput 10, rate 1.0
        assert_eq!(f.time(10.0), 1.0);
        assert_eq!(f.throughput(10.0), 10.0);
        assert_eq!(f.rate(10.0), 1.0);
        // rate is strictly decreasing for a superlinear cost
        assert!(f.rate(20.0) < f.rate(10.0));
        assert!(f.throughput(0.0) == 0.0);
        assert!(f.rate(1e-3) > f.rate(1.0));
    }

    #[test]
    fn erased_cost_objects_forward() {
        let q = QuadraticCost { k: 100.0 };
        let erased: &dyn CostFunction = &q;
        assert_eq!(erased.time(10.0).to_bits(), q.time(10.0).to_bits());
        assert_eq!(erased.rate(10.0).to_bits(), q.rate(10.0).to_bits());
        // &dyn CostFunction itself satisfies a `F: CostFunction` bound.
        fn takes_generic<F: CostFunction>(f: &F, x: f64) -> f64 {
            f.time(x)
        }
        assert_eq!(takes_generic(&erased, 10.0).to_bits(), q.time(10.0).to_bits());
    }

    #[test]
    fn check_increasing_time_accepts_and_rejects() {
        assert!(check_increasing_time(&QuadraticCost { k: 10.0 }, 1.0, 1e6, 64).is_ok());
        assert!(
            check_increasing_time(&AnalyticSpeed::decreasing(80.0, 1.0e6, 1.4), 1.0, 1e8, 64)
                .is_ok()
        );

        struct Decreasing;
        impl CostFunction for Decreasing {
            fn time(&self, x: f64) -> f64 {
                1.0 / x.max(1e-12)
            }
        }
        assert!(check_increasing_time(&Decreasing, 1.0, 1e4, 32).is_err());
    }
}
