//! Reference exact solver and optimality checking.
//!
//! The paper proves (§2, Fig. 6, induction over `p`) that the distribution
//! equalising execution times is the unique optimum of the real-valued
//! problem. That proof translates directly into an algorithm: the
//! per-processor allocation `x_i(t)` induced by a makespan `t` (the
//! intersection of the graph with the line of slope `1/t`) is monotone
//! non-decreasing in `t`, so `Σ x_i(t) = n` can be solved by bisection on
//! `t`. This module implements that solver — used as the *test oracle*
//! against which every production algorithm is verified — together with a
//! local-exchange optimality check for integer allocations.

use super::fine_tune::fine_tune;
use super::initial::bracket_slopes;
use super::problem::{empty_report, validate_processors, Distribution, PartitionReport};
use crate::error::{Error, Result};
use crate::geometry::intersections_at_slope;
use crate::cost::CostFunction;
use crate::trace::Trace;

/// Hard iteration cap of the oracle's slope bisection. Far beyond what any
/// admissible cluster needs (the relative-resolution stop triggers after at
/// most ~1100 halvings of the widest representable bracket); exists purely
/// so corrupted models cannot hang the oracle.
const MAX_ORACLE_STEPS: usize = 2_000;

/// The converged state of the oracle's slope bisection: the final bracket
/// and the intersection abscissas of both bounding lines.
struct SlopeSolution {
    shallow: f64,
    steep: f64,
    /// Abscissas at the steep bound (sum ≤ n).
    lo_x: Vec<f64>,
    /// Abscissas at the shallow bound (sum ≥ n).
    hi_x: Vec<f64>,
}

/// Shared slope bisection of [`solve`] and [`solve_real`].
///
/// Termination is belt-and-braces, hardened against the degenerate inputs
/// a pure relative-tolerance loop mishandles:
///
/// * **element closure** (`integer_stop`): once no per-processor interval
///   `[lo_i, hi_i]` is a full element wide, the integer fine-tuning result
///   is fully determined and further bisection is pure spin — this is what
///   stops quickly on flat clusters (all speeds equal) where the slope
///   interval narrows long after the allocation has settled;
/// * **slope resolution**: `steep − shallow ≤ ε·steep` relative stop plus a
///   midpoint-representability check, which also covers brackets that are
///   degenerate from the start (`shallow == steep`, makespan ≈ 0);
/// * **corruption guard**: a non-finite intersection total (NaN speeds from
///   a broken model) aborts with a clean [`Error::InvalidSpeedFunction`]
///   instead of silently bisecting on garbage comparisons.
fn bisect_slope<F: CostFunction>(
    n: u64,
    funcs: &[F],
    integer_stop: bool,
) -> Result<SlopeSolution> {
    let target = n as f64;
    let bracket = bracket_slopes(n, funcs)?;
    let mut shallow = bracket.shallow;
    let mut steep = bracket.steep;
    let mut hi_x = intersections_at_slope(funcs, shallow);
    let mut lo_x = intersections_at_slope(funcs, steep);
    for _ in 0..MAX_ORACLE_STEPS {
        if integer_stop && lo_x.iter().zip(&hi_x).all(|(&l, &h)| h - l < 1.0) {
            break;
        }
        let mid = 0.5 * (shallow + steep);
        if !(mid > shallow && mid < steep) {
            break;
        }
        let xs = intersections_at_slope(funcs, mid);
        let total: f64 = xs.iter().sum();
        if !total.is_finite() {
            return Err(Error::InvalidSpeedFunction {
                processor: xs.iter().position(|x| !x.is_finite()).unwrap_or(0),
                reason: "non-finite intersection during oracle bisection",
            });
        }
        if total < target {
            steep = mid;
            lo_x = xs;
        } else {
            shallow = mid;
            hi_x = xs;
        }
        if steep - shallow <= f64::EPSILON * steep {
            break;
        }
    }
    Ok(SlopeSolution { shallow, steep, lo_x, hi_x })
}

/// Solves the real-valued equal-time problem to float resolution, then
/// fine-tunes to integers.
///
/// This is the idealised `O(p·log n)` algorithm the paper calls "still a
/// challenge" to achieve with guaranteed bounds; here it serves as a
/// correctness oracle (it performs plain slope bisection to convergence in
/// *slope* space, stopping early only once no integer point can remain
/// between the bounding lines).
pub fn solve<F: CostFunction>(n: u64, funcs: &[F]) -> Result<PartitionReport> {
    validate_processors(funcs)?;
    if n == 0 {
        return Ok(empty_report(funcs.len()));
    }
    let s = bisect_slope(n, funcs, true)?;
    let distribution = fine_tune(n, funcs, &s.lo_x, &s.hi_x);
    let report = PartitionReport::from_distribution(distribution, funcs, Trace::default());
    if !report.makespan.is_finite() {
        // A model that degenerates (NaN/∞ speed) inside the allocated range
        // must surface as an error, not as a silently corrupt makespan.
        let times = report.distribution.times(funcs);
        return Err(Error::InvalidSpeedFunction {
            processor: times.iter().position(|t| !t.is_finite()).unwrap_or(0),
            reason: "non-finite execution time at the oracle solution",
        });
    }
    Ok(report)
}

/// The real-valued (non-integer) optimal allocation and its makespan.
///
/// Useful for measuring how much integer rounding costs.
pub fn solve_real<F: CostFunction>(n: u64, funcs: &[F]) -> Result<(Vec<f64>, f64)> {
    validate_processors(funcs)?;
    if n == 0 {
        return Ok((vec![0.0; funcs.len()], 0.0));
    }
    let s = bisect_slope(n, funcs, false)?;
    let slope = 0.5 * (s.shallow + s.steep);
    let xs = intersections_at_slope(funcs, slope);
    if let Some(i) = xs.iter().position(|x| !x.is_finite()) {
        return Err(Error::InvalidSpeedFunction {
            processor: i,
            reason: "non-finite intersection at the converged slope",
        });
    }
    Ok((xs, 1.0 / slope))
}

/// Checks that no single-element move can reduce the makespan of an
/// integer allocation.
///
/// For the separable min-max objective with increasing per-processor time
/// functions (the [`CostFunction`] invariant — checked on `time`, never on
/// speed), a distribution from which *every* bottleneck processor cannot
/// shed one element without some other processor becoming an equal-or-worse
/// bottleneck is globally optimal. This is the verifiable counterpart of
/// the paper's uniqueness argument and is what the property-based tests
/// assert about all production algorithms.
pub fn is_exchange_optimal<F: CostFunction>(
    distribution: &Distribution,
    funcs: &[F],
    tolerance: f64,
) -> bool {
    let counts = distribution.counts();
    let times = distribution.times(funcs);
    let makespan = times.iter().cloned().fold(0.0, f64::max);
    if makespan == 0.0 {
        return true;
    }
    // For every bottleneck processor, check that moving one of its elements
    // to any other processor would not strictly reduce the overall
    // makespan.
    for (i, &t_i) in times.iter().enumerate() {
        if t_i < makespan * (1.0 - 1e-12) || counts[i] == 0 {
            continue;
        }
        let reduced_i = funcs[i].time((counts[i] - 1) as f64);
        for (j, &t_j) in times.iter().enumerate() {
            if j == i {
                continue;
            }
            let raised_j = funcs[j].time((counts[j] + 1) as f64);
            // Makespan after the move, considering only the two changed
            // processors and the unchanged rest.
            let rest = times
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != i && k != j)
                .map(|(_, &t)| t)
                .fold(0.0, f64::max);
            let new_makespan = reduced_i.max(raised_j).max(rest).max(t_j);
            if new_makespan < makespan * (1.0 - tolerance) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{
        BisectionPartitioner, CombinedPartitioner, ModifiedPartitioner, Partitioner,
    };
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    fn mixed_cluster() -> Vec<AnalyticSpeed> {
        vec![
            AnalyticSpeed::decreasing(200.0, 1e6, 2.0),
            AnalyticSpeed::saturating(150.0, 5e4),
            AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0),
            AnalyticSpeed::paging(300.0, 2e6, 3.0),
        ]
    }

    #[test]
    fn oracle_conserves_and_balances() {
        let funcs = mixed_cluster();
        let r = solve(10_000_000, &funcs).unwrap();
        assert_eq!(r.distribution.total(), 10_000_000);
        assert!(r.distribution.imbalance(&funcs) < 1.001);
    }

    #[test]
    fn real_solution_sums_to_n() {
        let funcs = mixed_cluster();
        let (xs, t) = solve_real(10_000_000, &funcs).unwrap();
        let total: f64 = xs.iter().sum();
        assert!((total - 1e7).abs() < 1.0, "total = {total}");
        assert!(t > 0.0);
        // Equal times at the real solution.
        for (f, &x) in funcs.iter().zip(&xs) {
            assert!((f.time(x) - t).abs() / t < 1e-6);
        }
    }

    #[test]
    fn all_algorithms_match_oracle_makespan() {
        let funcs = mixed_cluster();
        for n in [1000u64, 99_999, 10_000_000] {
            let oracle = solve(n, &funcs).unwrap();
            for (name, report) in [
                ("basic", BisectionPartitioner::new().partition(n, &funcs).unwrap()),
                ("modified", ModifiedPartitioner::new().partition(n, &funcs).unwrap()),
                ("combined", CombinedPartitioner::new().partition(n, &funcs).unwrap()),
            ] {
                let rel = (report.makespan - oracle.makespan).abs() / oracle.makespan;
                assert!(rel < 1e-3, "{name} at n = {n}: {} vs oracle {}", report.makespan,
                        oracle.makespan);
            }
        }
    }

    #[test]
    fn oracle_solution_is_exchange_optimal() {
        let funcs = mixed_cluster();
        for n in [100u64, 54_321, 3_333_333] {
            let r = solve(n, &funcs).unwrap();
            assert!(is_exchange_optimal(&r.distribution, &funcs, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn exchange_check_detects_bad_distributions() {
        let funcs = vec![ConstantSpeed::new(1.0), ConstantSpeed::new(100.0)];
        // All the load on the slow machine: clearly improvable.
        let bad = Distribution::new(vec![100, 0]);
        assert!(!is_exchange_optimal(&bad, &funcs, 1e-9));
        let good = Distribution::new(vec![1, 99]);
        assert!(is_exchange_optimal(&good, &funcs, 1e-9));
    }

    #[test]
    fn zero_makespan_is_trivially_optimal() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        assert!(is_exchange_optimal(&Distribution::new(vec![0]), &funcs, 1e-9));
    }

    // --- regression cases found by the testkit conformance sweeps ---

    /// A speed model that collapses to NaN past a memory threshold, as a
    /// crashed paging model would.
    #[derive(Debug)]
    struct NanBeyond {
        speed: f64,
        threshold: f64,
    }

    impl crate::speed::SpeedFunction for NanBeyond {
        fn speed(&self, x: f64) -> f64 {
            if x <= self.threshold {
                self.speed
            } else {
                f64::NAN
            }
        }
    }

    #[test]
    fn nan_model_yields_clean_error_not_corrupt_makespan() {
        // The optimum wants ~n/2 per machine, well past the NaN threshold,
        // so the oracle's converged allocation lands in the broken region.
        let funcs = vec![
            NanBeyond { speed: 100.0, threshold: 1_000.0 },
            NanBeyond { speed: 100.0, threshold: 1_000.0 },
        ];
        match solve(1_000_000, &funcs) {
            Err(Error::InvalidSpeedFunction { .. }) | Err(Error::InsufficientCapacity { .. }) => {}
            Ok(r) => {
                assert!(
                    r.makespan.is_finite(),
                    "oracle returned a non-finite makespan instead of an error"
                );
            }
            Err(e) => panic!("unexpected error kind: {e:?}"),
        }
    }

    #[test]
    fn flat_cluster_terminates_with_bounded_evaluations() {
        use crate::trace::CountingSpeed;
        // All speeds equal and no closed-form intersection (CountingSpeed
        // hides it), the degenerate case where pure relative-tolerance slope
        // bisection keeps halving long after the integer allocation is
        // settled. Element closure must stop it early.
        let funcs: Vec<CountingSpeed<ConstantSpeed>> =
            (0..8).map(|_| CountingSpeed::new(ConstantSpeed::new(250.0))).collect();
        let r = solve(1_000_000, &funcs).unwrap();
        assert_eq!(r.distribution.total(), 1_000_000);
        for &c in r.distribution.counts() {
            assert_eq!(c, 125_000, "flat cluster must divide evenly");
        }
        let evals: u64 = funcs.iter().map(|f| f.evaluations()).sum();
        // With element closure this costs ~9k evaluations; without it the
        // bisection keeps halving to float resolution (~52 iterations × 8
        // numeric intersections each) at roughly 3× the cost.
        assert!(evals < 15_000, "flat cluster cost {evals} evaluations");
    }

    #[test]
    fn single_element_and_tiny_problems_terminate() {
        let funcs = mixed_cluster();
        for n in [1u64, 2, 3, 7] {
            let r = solve(n, &funcs).unwrap();
            assert_eq!(r.distribution.total(), n, "n = {n}");
            assert!(r.makespan.is_finite() && r.makespan >= 0.0);
        }
    }
}
