//! Simulated parallel LU factorisation under a column-block distribution
//! (paper Fig. 17).
//!
//! The simulation walks the blocked right-looking factorisation step by
//! step. At step `k` the owner of block column `k` factorises the panel;
//! every processor then updates the trailing block columns it owns. The
//! step cost is the panel time plus the slowest processor's update time,
//! and — crucially — each processor's speed is evaluated **at the problem
//! size it holds at that step** (its share of the shrinking active
//! sub-matrix), which is exactly why the Variable Group Block distribution
//! needs the functional model: "the distribution uses absolute speeds at
//! each step that are calculated based on the size of the problem solved at
//! that step".

use fpm_core::error::{Error, Result};
use fpm_core::speed::SpeedFunction;

use crate::pool::scoped_map;

/// Outcome of a simulated LU run.
#[derive(Debug, Clone)]
pub struct LuRunResult {
    /// Matrix dimension.
    pub n: u64,
    /// Column block width.
    pub block: u64,
    /// Total simulated execution time in seconds.
    pub total_seconds: f64,
    /// Total busy time per processor (diagnostics; excludes waiting).
    pub busy_seconds: Vec<f64>,
    /// Number of steps (block columns) executed.
    pub steps: usize,
}

/// Simulates the factorisation of an `n×n` matrix with block width `block`
/// where column block `j` is owned by processor `block_owner[j]`.
///
/// ```
/// use fpm_core::speed::PiecewiseLinearSpeed;
/// use fpm_exec::lu_run::simulate_lu;
///
/// let fast = PiecewiseLinearSpeed::new(vec![(1e3, 400.0), (1e8, 300.0)])?;
/// let slow = PiecewiseLinearSpeed::new(vec![(1e3, 200.0), (1e8, 150.0)])?;
/// // Eight block columns of width 128, owned round-robin.
/// let owners: Vec<usize> = (0..8).map(|j| j % 2).collect();
/// let run = simulate_lu(1024, 128, &owners, &[fast, slow])?;
/// assert_eq!(run.steps, 8);
/// assert!(run.total_seconds > 0.0);
/// # Ok::<(), fpm_core::error::Error>(())
/// ```
///
/// # Errors
///
/// [`Error::InvalidParameter`] if the owner list does not cover
/// `ceil(n/block)` blocks or names a processor out of range.
pub fn simulate_lu<F: SpeedFunction>(
    n: u64,
    block: u64,
    block_owner: &[usize],
    funcs: &[F],
) -> Result<LuRunResult> {
    let prep = LuPrep::new(n, block, block_owner, funcs)?;
    // Per-processor speed sweep, batched: every step-k lookup hits an
    // abscissa x_of(blocks) with 1 ≤ blocks ≤ initially-owned, so the
    // whole table is computed up front with `speeds_at` over a monotone
    // abscissa grid (which piece-wise linear models serve with a segment
    // walk instead of a binary search per probe).
    let tables: Vec<Vec<f64>> = funcs
        .iter()
        .zip(&prep.initial_owned)
        .map(|(f, &cnt)| prep.sweep_speeds(f, cnt))
        .collect();
    Ok(prep.run(block_owner, tables))
}

/// [`simulate_lu`] with the per-processor speed sweeps executed in
/// parallel on pool-bounded scoped threads. Results are identical; use
/// this variant when the speed models are expensive to evaluate.
pub fn simulate_lu_par<F: SpeedFunction + Sync>(
    n: u64,
    block: u64,
    block_owner: &[usize],
    funcs: &[F],
) -> Result<LuRunResult> {
    let prep = LuPrep::new(n, block, block_owner, funcs)?;
    let initial_owned = prep.initial_owned.clone();
    let tables = scoped_map(funcs, |i, f| prep.sweep_speeds(f, initial_owned[i]));
    Ok(prep.run(block_owner, tables))
}

/// Validated inputs plus the per-processor bookkeeping shared by the
/// sequential and parallel LU simulations.
struct LuPrep {
    n: u64,
    block: u64,
    /// Blocks initially owned by each processor.
    initial_owned: Vec<usize>,
    steps: usize,
}

impl LuPrep {
    fn new<F: SpeedFunction>(
        n: u64,
        block: u64,
        block_owner: &[usize],
        funcs: &[F],
    ) -> Result<Self> {
        if funcs.is_empty() {
            return Err(Error::NoProcessors);
        }
        assert!(block > 0);
        let m = n.div_ceil(block) as usize;
        if block_owner.len() != m {
            return Err(Error::InvalidParameter("block_owner must cover ceil(n/block) blocks"));
        }
        if block_owner.iter().any(|&o| o >= funcs.len()) {
            return Err(Error::InvalidParameter("block owner out of processor range"));
        }
        let mut initial_owned = vec![0usize; funcs.len()];
        for &o in block_owner {
            initial_owned[o] += 1;
        }
        Ok(Self { n, block, initial_owned, steps: m })
    }

    /// Speeds are looked up at the *full-height panel* size
    /// `n × owned columns` (paper Fig. 17c: the problem size at step k
    /// equals the number of elements in the n×n2 panels A_{i,k}) —
    /// every processor keeps its whole column set resident, so the
    /// full-height measure is also what drives paging.
    fn x_of(&self, blocks: f64) -> f64 {
        (blocks * self.block as f64 * self.n as f64).max(1.0)
    }

    /// `speed(x_of(blocks))` for `blocks = 1..=cnt`, batched.
    fn sweep_speeds<F: SpeedFunction>(&self, f: &F, cnt: usize) -> Vec<f64> {
        let xs: Vec<f64> = (1..=cnt).map(|blocks| self.x_of(blocks as f64)).collect();
        let mut out = vec![0.0f64; xs.len()];
        f.speeds_at(&xs, &mut out);
        out
    }

    /// Walks the factorisation using the precomputed speed tables
    /// (`tables[i][blocks-1]` = speed of processor `i` holding `blocks`).
    fn run(&self, block_owner: &[usize], tables: Vec<Vec<f64>>) -> LuRunResult {
        let p = tables.len();
        let b = self.block as f64;
        let mut total = 0.0f64;
        let mut busy = vec![0.0f64; p];
        // Owned trailing block counts, updated incrementally.
        let mut owned_after = self.initial_owned.clone();

        for (k, &owner) in block_owner.iter().enumerate() {
            owned_after[owner] -= 1; // block k leaves the trailing set
            let rows_rem = (self.n - (k as u64) * self.block) as f64; // panel rows
            let rows_after = (self.n as f64 - ((k + 1) as f64) * b).max(0.0);

            // Panel factorisation: ≈ rows_rem·b² flops by the owner, at
            // the size including block k (owned_after[owner] + 1 blocks).
            let panel_flops = rows_rem * b * b;
            let s_owner = tables[owner][owned_after[owner]];
            let panel_time = if s_owner > 0.0 {
                panel_flops / (s_owner * 1e6)
            } else {
                f64::INFINITY
            };
            busy[owner] += panel_time;

            // Trailing updates: 2·rows_after·b² flops per owned block.
            let mut update_time = 0.0f64;
            if rows_after > 0.0 {
                for (i, table) in tables.iter().enumerate() {
                    if owned_after[i] == 0 {
                        continue;
                    }
                    let blocks = owned_after[i] as f64;
                    let flops = 2.0 * rows_after * b * b * blocks;
                    let s_i = table[owned_after[i] - 1];
                    let t = if s_i > 0.0 { flops / (s_i * 1e6) } else { f64::INFINITY };
                    busy[i] += t;
                    update_time = update_time.max(t);
                }
            }
            total += panel_time + update_time;
        }

        LuRunResult {
            n: self.n,
            block: self.block,
            total_seconds: total,
            busy_seconds: busy,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimCluster;
    use fpm_core::partition::{CombinedPartitioner, SingleNumberPartitioner, Partitioner};
    use fpm_core::speed::ConstantSpeed;
    use fpm_kernels::vgb::variable_group_block;
    use fpm_simnet::profile::AppProfile;
    use fpm_simnet::workload;

    #[test]
    fn single_processor_time_matches_flop_count() {
        // One processor at a constant 100 MFlops: total time ≈ (2/3)n³ /
        // 100e6, up to blocked-algorithm bookkeeping.
        let funcs = vec![ConstantSpeed::new(100.0)];
        let n = 512u64;
        let owners = vec![0usize; 16];
        let r = simulate_lu(n, 32, &owners, &funcs).unwrap();
        let expected = workload::lu_flops(n) / (100.0 * 1e6);
        let rel = (r.total_seconds - expected).abs() / expected;
        assert!(rel < 0.25, "simulated {} vs analytic {}", r.total_seconds, expected);
    }

    #[test]
    fn balanced_owners_balance_busy_time() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(100.0)];
        // Round-robin ownership.
        let owners: Vec<usize> = (0..32).map(|k| k % 2).collect();
        let r = simulate_lu(1024, 32, &owners, &funcs).unwrap();
        let rel = (r.busy_seconds[0] - r.busy_seconds[1]).abs() / r.busy_seconds[0];
        assert!(rel < 0.15, "busy {:?}", r.busy_seconds);
    }

    #[test]
    fn skewed_ownership_on_equal_machines_is_slower() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(100.0)];
        let balanced: Vec<usize> = (0..32).map(|k| k % 2).collect();
        let skewed: Vec<usize> = (0..32).map(|k| usize::from(k >= 28)).collect();
        let t_bal = simulate_lu(1024, 32, &balanced, &funcs).unwrap().total_seconds;
        let t_skew = simulate_lu(1024, 32, &skewed, &funcs).unwrap().total_seconds;
        assert!(t_skew > t_bal, "balanced {t_bal} vs skewed {t_skew}");
    }

    #[test]
    fn vgb_functional_beats_single_number_with_paging() {
        // Table 2 LU at a size where several machines page: the VGB
        // distribution derived from the functional model must beat the one
        // derived from single-number speeds sampled at a small matrix.
        let cluster = SimCluster::table2(AppProfile::LuFactorization);
        let n = 24_000u64;
        let b = 256u64;
        let functional =
            variable_group_block(n, b, cluster.funcs(), &CombinedPartitioner::new()).unwrap();
        let single = SingleNumberPartitioner::at_size(workload::lu_elements(2000) as f64);
        let single_vgb = variable_group_block(n, b, cluster.funcs(), &single).unwrap();
        let t_f = simulate_lu(n, b, &functional.block_owner, cluster.funcs())
            .unwrap()
            .total_seconds;
        let t_s =
            simulate_lu(n, b, &single_vgb.block_owner, cluster.funcs()).unwrap().total_seconds;
        assert!(t_f < t_s, "functional {t_f} vs single-number {t_s}");
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let cluster = SimCluster::table2(AppProfile::LuFactorization);
        let n = 8_000u64;
        let b = 256u64;
        let d =
            variable_group_block(n, b, cluster.funcs(), &CombinedPartitioner::new()).unwrap();
        let seq = simulate_lu(n, b, &d.block_owner, cluster.funcs()).unwrap();
        let par = simulate_lu_par(n, b, &d.block_owner, cluster.funcs()).unwrap();
        assert_eq!(seq.total_seconds.to_bits(), par.total_seconds.to_bits());
        assert_eq!(seq.busy_seconds, par.busy_seconds);
        assert_eq!(seq.steps, par.steps);
    }

    #[test]
    fn parallel_sweep_matches_sequential_on_random_adversarial_clusters() {
        // Random heterogeneous clusters (paging machines included): the
        // pooled sweep must be bit-identical to the sequential one, not
        // merely close — pooling must not change evaluation order or
        // floating-point association.
        use fpm_simnet::scenarios::{random_cluster, ScenarioConfig};
        for seed in [0x1u64, 0xA5A5, 0xDEAD_BEEF] {
            let cfg = ScenarioConfig { machines: 9, seed, ..ScenarioConfig::default() };
            let funcs = random_cluster(cfg, AppProfile::LuFactorization);
            let n = 4096u64;
            let b = 128u64;
            let d = variable_group_block(n, b, &funcs, &CombinedPartitioner::new())
                .unwrap_or_else(|e| panic!("seed {seed:#x}: vgb failed: {e:?}"));
            let seq = simulate_lu(n, b, &d.block_owner, &funcs).unwrap();
            let par = simulate_lu_par(n, b, &d.block_owner, &funcs).unwrap();
            assert_eq!(
                seq.total_seconds.to_bits(),
                par.total_seconds.to_bits(),
                "seed {seed:#x}: total time diverged"
            );
            let seq_bits: Vec<u64> = seq.busy_seconds.iter().map(|t| t.to_bits()).collect();
            let par_bits: Vec<u64> = par.busy_seconds.iter().map(|t| t.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "seed {seed:#x}: busy times diverged");
            assert_eq!(seq.steps, par.steps);
        }
    }

    #[test]
    fn owner_list_validation() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        assert!(simulate_lu(64, 32, &[0], &funcs).is_err(), "wrong block count");
        assert!(simulate_lu(64, 32, &[0, 1], &funcs).is_err(), "owner out of range");
        let empty: Vec<ConstantSpeed> = vec![];
        assert!(matches!(simulate_lu(64, 32, &[0, 0], &empty), Err(Error::NoProcessors)));
    }

    #[test]
    fn step_count_is_block_count() {
        let funcs = vec![ConstantSpeed::new(10.0)];
        let r = simulate_lu(100, 32, &[0, 0, 0, 0], &funcs).unwrap();
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn combined_partitioner_balances_lu_on_constant_cluster() {
        let funcs = vec![ConstantSpeed::new(300.0), ConstantSpeed::new(100.0)];
        let d = variable_group_block(2048, 64, &funcs, &CombinedPartitioner::new()).unwrap();
        let r = simulate_lu(2048, 64, &d.block_owner, &funcs).unwrap();
        // The fast processor must be busy a comparable amount of time (3:1
        // speeds, 3:1 blocks → similar busy time).
        let ratio = r.busy_seconds[0] / r.busy_seconds[1];
        assert!((0.5..2.0).contains(&ratio), "busy ratio {ratio}: {:?}", r.busy_seconds);
        // Sanity: the partitioner really was exercised.
        let _ = CombinedPartitioner::new().partition(100, &funcs).unwrap();
    }
}
