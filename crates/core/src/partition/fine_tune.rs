//! The fine-tuning procedure (paper Fig. 9).
//!
//! Once the iterative search stops — no integer-abscissa point of any graph
//! lies strictly inside the region between the bounding lines — the exact
//! optimal line generally crosses the graphs at non-integer sizes. The
//! paper then considers the `2p` integer points nearest the two lines,
//! ranks their execution times (`O(p·log p)` with a comparison sort) and
//! picks the best consistent integer allocation.
//!
//! This implementation generalises the procedure slightly so that it is
//! robust to arbitrary rounding residue: starting from the floor of every
//! lower intersection it distributes the remaining `n − Σ⌊lo_i⌋` elements
//! one at a time, always to the processor whose *post-increment* execution
//! time is smallest (a heap-based greedy, optimal for min-max objectives
//! with increasing per-processor time functions). If the floors overshoot
//! `n`, elements are removed from the processors with the largest current
//! time. Both loops touch `O(p + residue)` heap entries with
//! `residue ≤ 2p` whenever the bounding lines genuinely bracket `n`, so
//! the overall cost matches the paper's `O(p·log p)` bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::problem::Distribution;
use crate::error::{Error, Result};
use crate::cost::CostFunction;

/// Total-ordering wrapper for `f64` heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Fine-tunes the real-valued interval `[lo_i, hi_i]` per processor into
/// the best integer allocation with `Σ x_i = n`.
///
/// `lo` and `hi` are the intersection abscissas of each graph with the
/// steeper and shallower bounding lines respectively.
pub fn fine_tune<F: CostFunction>(n: u64, funcs: &[F], lo: &[f64], hi: &[f64]) -> Distribution {
    fine_tune_capped(n, funcs, lo, hi, None)
        .expect("uncapped fine-tuning cannot run out of capacity")
}

/// Cap-aware variant used by the bounded formulation: no processor may
/// exceed its `caps` entry.
///
/// # Errors
///
/// [`Error::InsufficientCapacity`] if `Σ caps < n`.
pub(crate) fn fine_tune_capped<F: CostFunction>(
    n: u64,
    funcs: &[F],
    lo: &[f64],
    hi: &[f64],
    caps: Option<&[u64]>,
) -> Result<Distribution> {
    let p = funcs.len();
    assert_eq!(lo.len(), p, "lower bounds length mismatch");
    assert_eq!(hi.len(), p, "upper bounds length mismatch");
    if let Some(caps) = caps {
        assert_eq!(caps.len(), p, "caps length mismatch");
        let capacity: u64 = caps.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
        if capacity < n {
            return Err(Error::InsufficientCapacity { requested: n, available: capacity });
        }
    }
    let cap_of = |i: usize| caps.map_or(u64::MAX, |c| c[i]);

    // Starting point: the floor of every lower intersection, capped.
    let mut counts: Vec<u64> = (0..p)
        .map(|i| (lo[i].max(0.0).floor() as u64).min(cap_of(i)))
        .collect();
    let mut assigned: u64 = counts.iter().sum();

    if assigned < n {
        // Distribute the residue greedily: always to the processor whose
        // time *after* receiving one more element is smallest.
        let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = (0..p)
            .filter(|&i| counts[i] < cap_of(i))
            .map(|i| Reverse((OrdF64(funcs[i].time((counts[i] + 1) as f64)), i)))
            .collect();
        while assigned < n {
            let Some(Reverse((_, i))) = heap.pop() else {
                let capacity: u64 = counts.iter().sum();
                return Err(Error::InsufficientCapacity { requested: n, available: capacity });
            };
            counts[i] += 1;
            assigned += 1;
            if counts[i] < cap_of(i) {
                heap.push(Reverse((OrdF64(funcs[i].time((counts[i] + 1) as f64)), i)));
            }
        }
    } else if assigned > n {
        // Remove the overshoot from the processors with the largest times.
        let mut heap: BinaryHeap<(OrdF64, usize)> = (0..p)
            .filter(|&i| counts[i] > 0)
            .map(|i| (OrdF64(funcs[i].time(counts[i] as f64)), i))
            .collect();
        while assigned > n {
            let (_, i) = heap.pop().expect("assigned > n ≥ 0 implies a non-empty heap");
            counts[i] -= 1;
            assigned -= 1;
            if counts[i] > 0 {
                heap.push((OrdF64(funcs[i].time(counts[i] as f64)), i));
            }
        }
    }

    debug_assert_eq!(counts.iter().sum::<u64>(), n);
    Ok(Distribution::new(counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::ConstantSpeed;

    #[test]
    fn exact_floors_need_no_adjustment() {
        let funcs = vec![ConstantSpeed::new(10.0), ConstantSpeed::new(20.0)];
        let d = fine_tune(30, &funcs, &[10.0, 20.0], &[10.0, 20.0]);
        assert_eq!(d.counts(), &[10, 20]);
    }

    #[test]
    fn residue_goes_to_fastest() {
        // lo sums to 28, two residue elements must land on the faster
        // processor whose incremental time is lower.
        let funcs = vec![ConstantSpeed::new(10.0), ConstantSpeed::new(1000.0)];
        let d = fine_tune(30, &funcs, &[9.3, 18.7], &[10.2, 19.9]);
        assert_eq!(d.total(), 30);
        assert_eq!(d.counts()[1], 21, "both extra elements on the fast machine: {:?}", d);
    }

    #[test]
    fn overshoot_is_removed_from_slowest() {
        let funcs = vec![ConstantSpeed::new(1.0), ConstantSpeed::new(100.0)];
        // floors sum to 40 but n = 30: the slow machine must shed load.
        let d = fine_tune(30, &funcs, &[20.0, 20.0], &[20.0, 20.0]);
        assert_eq!(d.total(), 30);
        assert!(d.counts()[0] < d.counts()[1]);
    }

    #[test]
    fn minimises_makespan_on_equal_speeds() {
        let funcs: Vec<ConstantSpeed> = (0..4).map(|_| ConstantSpeed::new(10.0)).collect();
        let d = fine_tune(10, &funcs, &[2.0, 2.0, 2.0, 2.0], &[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(d.total(), 10);
        let max = d.counts().iter().max().unwrap();
        let min = d.counts().iter().min().unwrap();
        assert!(max - min <= 1, "equal speeds must split near-evenly: {:?}", d);
    }

    #[test]
    fn caps_are_respected() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(1.0)];
        let d = fine_tune_capped(20, &funcs, &[15.0, 1.0], &[19.0, 3.0], Some(&[12, 100]))
            .unwrap();
        assert_eq!(d.total(), 20);
        assert!(d.counts()[0] <= 12);
    }

    #[test]
    fn insufficient_caps_error() {
        let funcs = vec![ConstantSpeed::new(1.0), ConstantSpeed::new(1.0)];
        let e = fine_tune_capped(100, &funcs, &[1.0, 1.0], &[2.0, 2.0], Some(&[10, 10]))
            .unwrap_err();
        assert!(matches!(e, Error::InsufficientCapacity { available: 20, .. }));
    }

    #[test]
    fn zero_n_gives_zero_distribution() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        let d = fine_tune(0, &funcs, &[0.0], &[0.4]);
        assert_eq!(d.counts(), &[0]);
    }

    #[test]
    fn large_residue_is_handled() {
        // Bounding intervals far from n still converge (robustness beyond
        // the paper's 2p-candidate assumption).
        let funcs = vec![ConstantSpeed::new(3.0), ConstantSpeed::new(7.0)];
        let d = fine_tune(1000, &funcs, &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(d.total(), 1000);
        // Proportional to speeds: 300/700.
        assert!((d.counts()[0] as i64 - 300).abs() <= 1);
    }

    #[test]
    fn fewer_elements_than_processors_idles_the_slow_ones() {
        // n < p: only the fastest machines may receive an element.
        let funcs: Vec<ConstantSpeed> =
            [1.0, 50.0, 2.0, 40.0, 3.0, 60.0].iter().map(|&s| ConstantSpeed::new(s)).collect();
        let lo = [0.0; 6];
        let hi = [0.9; 6];
        let d = fine_tune(3, &funcs, &lo, &hi);
        assert_eq!(d.total(), 3);
        assert_eq!(
            d.counts(),
            &[0, 1, 0, 1, 0, 1],
            "the three fastest machines take one element each"
        );
    }

    #[test]
    fn zero_n_with_positive_floors_sheds_everything() {
        // The bounding intersections may be far above an n of zero (a
        // degenerate bracket); every element must be shed.
        let funcs = vec![ConstantSpeed::new(5.0), ConstantSpeed::new(9.0)];
        let d = fine_tune(0, &funcs, &[2.9, 3.7], &[4.0, 5.0]);
        assert_eq!(d.counts(), &[0, 0]);
    }

    #[test]
    fn equal_time_ties_break_deterministically() {
        // Two identical machines, odd n: (k, k+1) and (k+1, k) have equal
        // makespan. The choice must be deterministic across runs and still
        // optimal.
        let funcs = vec![ConstantSpeed::new(10.0), ConstantSpeed::new(10.0)];
        let first = fine_tune(7, &funcs, &[3.2, 3.2], &[4.1, 4.1]);
        let second = fine_tune(7, &funcs, &[3.2, 3.2], &[4.1, 4.1]);
        assert_eq!(first, second, "tie-breaking must be deterministic");
        assert_eq!(first.total(), 7);
        assert_eq!(first.makespan(&funcs), 0.4, "one machine takes 4, the other 3");
        // More broadly: residue ties on a flat cluster fill the lowest
        // indices first (heap keys carry the index as tie-breaker).
        let flat: Vec<ConstantSpeed> = (0..5).map(|_| ConstantSpeed::new(10.0)).collect();
        let d = fine_tune(7, &flat, &[1.0; 5], &[2.0; 5]);
        assert_eq!(d.counts(), &[2, 2, 1, 1, 1]);
    }

    #[test]
    fn beats_naive_floor_and_ceil_roundings() {
        use crate::partition::oracle;
        // Heterogeneous cluster with a fractional real optimum: the greedy
        // integer fine-tuning must be at least as good as rounding every
        // real abscissa down (dumping the deficit on the first machine) or
        // up (shedding the surplus from the last machine) — and strictly
        // better than at least one of them.
        let funcs = vec![ConstantSpeed::new(1.0), ConstantSpeed::new(100.0)];
        let n = 102u64;
        let (xs, _) = oracle::solve_real(n, &funcs).unwrap();
        assert!(xs.iter().any(|x| x.fract() > 1e-6), "optimum must be fractional: {xs:?}");

        let tuned = fine_tune(n, &funcs, &xs, &xs);
        assert_eq!(tuned.total(), n);

        let mut floor: Vec<u64> = xs.iter().map(|x| x.floor() as u64).collect();
        floor[0] += n - floor.iter().sum::<u64>(); // deficit on machine 0
        let mut ceil: Vec<u64> = xs.iter().map(|x| x.ceil() as u64).collect();
        let surplus = ceil.iter().sum::<u64>() - n;
        let last = ceil.len() - 1;
        ceil[last] -= surplus.min(ceil[last]); // surplus off the last machine

        let makespan = |c: &[u64]| Distribution::new(c.to_vec()).makespan(&funcs);
        let m_tuned = tuned.makespan(&funcs);
        let (m_floor, m_ceil) = (makespan(&floor), makespan(&ceil));
        assert!(m_tuned <= m_floor + 1e-12, "tuned {m_tuned} vs floor {m_floor}");
        assert!(m_tuned <= m_ceil + 1e-12, "tuned {m_tuned} vs ceil {m_ceil}");
        assert!(
            m_tuned < m_floor - 1e-12 || m_tuned < m_ceil - 1e-12,
            "tuned {m_tuned} must strictly beat a naive rounding ({m_floor}, {m_ceil})"
        );
    }
}
