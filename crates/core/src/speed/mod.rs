//! Speed functions: the functional performance model.
//!
//! The paper's central idea is to represent the absolute speed of each
//! processor by a continuous, relatively smooth function of problem size
//! instead of a single number. This module provides:
//!
//! * the [`SpeedFunction`] trait and its model requirements;
//! * [`AnalyticSpeed`] — closed-form families covering every admissible
//!   shape from paper Fig. 5 (plus the basic algorithm's worst case);
//! * [`PiecewiseLinearSpeed`] — the representation the paper actually
//!   recommends building from a few experimental points (Fig. 14);
//! * [`SpeedBand`] — a band of curves capturing workload fluctuation
//!   (paper Fig. 2);
//! * [`builder`] — the adaptive trisection procedure of §3.1 that
//!   constructs a piece-wise linear band from live measurements;
//! * [`refine`] — the online feedback loop that locally re-fits a
//!   piece-wise model from observed execution times once the cluster
//!   drifts away from the measured band.

mod analytic;
mod band;
pub mod builder;
mod cached;
mod function;
mod hierarchical;
mod piecewise;
pub mod refine;
pub mod surface;

pub use analytic::AnalyticSpeed;
pub use band::{BandPoint, SpeedBand, WidthLaw};
pub use builder::{build_speed_band, BuildOutcome, BuilderConfig, Measurer};
pub(crate) use cached::BitsMap;
pub use cached::{CachedSpeed, SharedCachedSpeed};
pub use function::{check_single_intersection, ConstantSpeed, ScaledSpeed, SpeedFunction};
pub use hierarchical::{HierarchicalSpeed, MemoryLevel};
pub use piecewise::PiecewiseLinearSpeed;
pub use refine::{ModelRefiner, RefineConfig, RefineOutcome, RejectReason};
pub use surface::{
    partition_column_strips, ColumnStrips, ElementCountSurface, FixedN1, FixedN2, SpeedSurface,
};
