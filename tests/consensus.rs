//! Cross-algorithm consensus on generated random heterogeneous networks:
//! every production algorithm must agree with the oracle on every seed.

use fpm::prelude::*;
use fpm_core::partition::{oracle, SecantPartitioner};
use fpm_simnet::scenarios::{random_cluster, ScenarioConfig};

fn check_consensus(seed: u64, machines: usize, n: u64, app: AppProfile) {
    let cluster = random_cluster(
        ScenarioConfig { machines, seed, ..ScenarioConfig::default() },
        app,
    );
    let reference = oracle::solve(n, &cluster).unwrap();
    let reports = [
        ("basic", BisectionPartitioner::new().partition(n, &cluster)),
        ("modified", ModifiedPartitioner::new().partition(n, &cluster)),
        ("combined", CombinedPartitioner::new().partition(n, &cluster)),
        ("secant", SecantPartitioner::new().partition(n, &cluster)),
    ];
    for (name, report) in reports {
        let report = report
            .unwrap_or_else(|e| panic!("seed {seed}, {machines} machines, {name}: {e}"));
        assert_eq!(report.distribution.total(), n, "seed {seed} {name}: conservation");
        let rel = (report.makespan - reference.makespan).abs() / reference.makespan.max(1e-30);
        assert!(
            rel < 5e-3,
            "seed {seed} {name}: makespan {} vs oracle {}",
            report.makespan,
            reference.makespan
        );
    }
}

#[test]
fn consensus_across_seeds_mm() {
    for seed in 0..12u64 {
        check_consensus(seed, 8, 500_000_000, AppProfile::MatrixMult);
    }
}

#[test]
fn consensus_across_seeds_lu() {
    for seed in 100..108u64 {
        check_consensus(seed, 10, 200_000_000, AppProfile::LuFactorization);
    }
}

#[test]
fn consensus_on_large_clusters() {
    for seed in 7..10u64 {
        check_consensus(seed, 64, 2_000_000_000, AppProfile::MatrixMult);
    }
}

#[test]
fn consensus_on_tiny_problems() {
    for seed in 50..55u64 {
        check_consensus(seed, 6, 1_000, AppProfile::MatrixMultAtlas);
    }
}

#[test]
fn vgb_consensus_on_random_clusters() {
    // The VGB distribution built with different partitioners produces
    // similar simulated LU times (the partitioners agree, so the group
    // structures do too).
    for seed in 0..4u64 {
        let cluster = random_cluster(
            ScenarioConfig { machines: 8, seed, ..ScenarioConfig::default() },
            AppProfile::LuFactorization,
        );
        let n = 8_000u64;
        let b = 64u64;
        let d1 = variable_group_block(n, b, &cluster, &CombinedPartitioner::new()).unwrap();
        let d2 = variable_group_block(n, b, &cluster, &ModifiedPartitioner::new()).unwrap();
        let t1 = simulate_lu(n, b, &d1.block_owner, &cluster).unwrap().total_seconds;
        let t2 = simulate_lu(n, b, &d2.block_owner, &cluster).unwrap().total_seconds;
        let rel = (t1 - t2).abs() / t1.max(t2);
        assert!(rel < 0.05, "seed {seed}: {t1} vs {t2}");
    }
}
