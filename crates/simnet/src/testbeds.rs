//! The paper's two experimental networks.
//!
//! * [`table1`] — the four heterogeneous computers of Table 1, used for the
//!   motivating speed-curve experiments (Figs. 1–2);
//! * [`table2`] — the twelve Solaris/Linux workstations of Table 2 used in
//!   the numerical experiments (§3), including the measured paging matrix
//!   sizes for both applications.

use crate::machine::{Arch, MachineSpec};
use crate::profile::AppProfile;
use crate::speed_model::MachineSpeed;

/// The four heterogeneous computers of paper Table 1.
///
/// Table 1 does not list free memory or paging sizes; the specs derive
/// free memory as 70 % of main memory and the paging points from it.
pub fn table1() -> Vec<MachineSpec> {
    vec![
        MachineSpec::new(
            "Comp1",
            "Linux 2.4.20-8",
            Arch::Pentium4,
            2793,
            513_304,
            512,
        ),
        MachineSpec::new(
            "Comp2",
            "SunOS 5.8 sun4u sparc SUNW,Ultra-5_10",
            Arch::UltraSparc,
            440,
            524_288,
            2048,
        ),
        MachineSpec::new("Comp3", "Windows XP", Arch::GenericX86, 3000, 1_030_388, 512),
        MachineSpec::new("Comp4", "Linux 2.4.7-10 i686", Arch::GenericX86, 730, 254_524, 256),
    ]
}

/// The twelve workstations of paper Table 2 with their measured paging
/// matrix sizes (columns "Paging (MM)" and "Paging (LU)").
pub fn table2() -> Vec<MachineSpec> {
    vec![
        MachineSpec::new("X1", "Linux 2.4.20-20.9 i686", Arch::PentiumIii, 997, 513_304, 256)
            .with_free_memory(363_264)
            .with_paging(4500, 6000),
        MachineSpec::new("X2", "Linux 2.4.18-3 i686", Arch::PentiumIii, 997, 254_576, 256)
            .with_free_memory(65_692)
            .with_paging(4000, 5000),
        MachineSpec::new("X3", "Linux 2.4.20-20.9bigmem", Arch::Xeon, 2783, 7_933_500, 512)
            .with_free_memory(2_221_436)
            .with_paging(6400, 11_000),
        MachineSpec::new("X4", "Linux 2.4.20-20.9bigmem", Arch::Xeon, 2783, 7_933_500, 512)
            .with_free_memory(3_073_628)
            .with_paging(6400, 11_000),
        MachineSpec::new("X5", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(415_904)
            .with_paging(6000, 8500),
        MachineSpec::new("X6", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(364_120)
            .with_paging(6000, 8500),
        MachineSpec::new("X7", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(215_752)
            .with_paging(6000, 8000),
        MachineSpec::new("X8", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(134_400)
            .with_paging(5500, 6500),
        MachineSpec::new("X9", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(134_400)
            .with_paging(5500, 6500),
        MachineSpec::new("X10", "SunOS 5.8 sun4u sparc", Arch::UltraSparc, 440, 524_288, 2048)
            .with_free_memory(409_600)
            .with_paging(4500, 5000),
        MachineSpec::new("X11", "SunOS 5.8 sun4u sparc", Arch::UltraSparc, 440, 524_288, 2048)
            .with_free_memory(418_816)
            .with_paging(4500, 5000),
        MachineSpec::new("X12", "SunOS 5.8 sun4u sparc", Arch::UltraSparc, 440, 524_288, 2048)
            .with_free_memory(395_264)
            .with_paging(4500, 5000),
    ]
}

/// Speed models for every machine of a testbed running `app`.
pub fn speed_models(specs: &[MachineSpec], app: AppProfile) -> Vec<MachineSpeed> {
    specs.iter().map(|m| MachineSpeed::for_app(m, app)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_core::speed::{check_single_intersection, SpeedFunction};

    #[test]
    fn table1_has_four_machines() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].name, "Comp1");
        assert_eq!(t[1].arch, Arch::UltraSparc);
        assert_eq!(t[3].cache_kb, 256);
    }

    #[test]
    fn table2_has_twelve_machines_with_paging() {
        let t = table2();
        assert_eq!(t.len(), 12);
        for m in &t {
            assert!(m.paging_mm.is_some(), "{} must have a measured MM paging size", m.name);
            assert!(m.paging_lu.is_some());
        }
        assert_eq!(t[0].paging_mm, Some(4500));
        assert_eq!(t[2].paging_lu, Some(11_000));
        assert_eq!(t[9].cache_kb, 2048);
    }

    #[test]
    fn table2_heterogeneity_ratio_matches_paper() {
        // Paper §3.1: for MM the fastest machine does ≈250 MFlops, the
        // slowest ≈31, ratio ≈ 8.0 "reasonably heterogeneous".
        let models = speed_models(&table2(), AppProfile::MatrixMult);
        let at = crate::workload::mm_elements(4000) as f64;
        let speeds: Vec<f64> = models.iter().map(|m| m.speed(at)).collect();
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio = max / min;
        assert!((4.0..14.0).contains(&ratio), "heterogeneity ratio {ratio}");
    }

    #[test]
    fn all_testbed_models_satisfy_shape_requirement() {
        for specs in [table1(), table2()] {
            for app in AppProfile::all() {
                for m in speed_models(&specs, app) {
                    let (_a, b) = m.model_interval();
                    assert!(
                        check_single_intersection(&m, 16.0, b, 400).is_ok(),
                        "{} / {}",
                        m.name(),
                        app.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lu_heterogeneity_matches_paper() {
        // Paper: X6 ≈130 MFlops LU at 8500; X1 ≈19 MFlops at 4500; ratio
        // ≈ 6.8.
        let models = speed_models(&table2(), AppProfile::LuFactorization);
        let x6 = &models[5];
        let x1 = &models[0];
        let s6 = x6.speed(crate::workload::lu_elements(8500) as f64);
        let s1 = x1.speed(crate::workload::lu_elements(4500) as f64);
        let ratio = s6 / s1;
        assert!((4.0..10.0).contains(&ratio), "LU ratio {ratio} (s6={s6}, s1={s1})");
    }
}
