//! Error type shared by all partitioning and model-building routines.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by partitioning algorithms and model builders.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The problem has no processors.
    NoProcessors,
    /// The requested problem size cannot be represented or partitioned.
    InvalidProblemSize {
        /// The offending size.
        n: u64,
        /// Explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A speed function violated a model requirement (non-positive speed,
    /// non-finite value, or the single-intersection property).
    InvalidSpeedFunction {
        /// Index of the processor whose function is invalid.
        processor: usize,
        /// Explanation of the violated requirement.
        reason: &'static str,
    },
    /// An iterative search failed to converge within its step budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of steps executed before giving up.
        steps: usize,
    },
    /// The total capacity of all processors is insufficient for the problem
    /// (only possible in the bounded formulation).
    InsufficientCapacity {
        /// Requested number of elements.
        requested: u64,
        /// Sum of all per-processor upper bounds.
        available: u64,
    },
    /// Invalid parameter passed to a model builder.
    InvalidParameter(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoProcessors => write!(f, "no processors supplied"),
            Error::InvalidProblemSize { n, reason } => {
                write!(f, "invalid problem size {n}: {reason}")
            }
            Error::InvalidSpeedFunction { processor, reason } => {
                write!(f, "invalid speed function for processor {processor}: {reason}")
            }
            Error::NoConvergence { algorithm, steps } => {
                write!(f, "{algorithm} failed to converge after {steps} steps")
            }
            Error::InsufficientCapacity { requested, available } => write!(
                f,
                "insufficient capacity: requested {requested} elements but bounds admit only {available}"
            ),
            Error::InvalidParameter(reason) => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidProblemSize { n: 0, reason: "must be positive" };
        assert!(e.to_string().contains("must be positive"));
        let e = Error::NoConvergence { algorithm: "bisection", steps: 99 };
        assert!(e.to_string().contains("bisection"));
        assert!(e.to_string().contains("99"));
        let e = Error::InsufficientCapacity { requested: 10, available: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NoProcessors, Error::NoProcessors);
        assert_ne!(
            Error::NoProcessors,
            Error::InvalidParameter("x")
        );
    }
}
