//! The `fpm` command-line tool. See `fpm --help`.

use std::collections::HashMap;
use std::process::ExitCode;

use fpm_cli::commands::{self, Algorithm};
use fpm_cli::parse_models;

const HELP: &str = "\
fpm — data partitioning with a functional performance model

USAGE:
    fpm partition   --model FILE --n N [--algorithm combined|basic|modified|single@SIZE]
    fpm simulate-mm --model FILE --dim N [--single-ref ELEMENTS]
    fpm models      --testbed NAME        (write a demo model file to stdout)
    fpm models      --list
    fpm calibrate   [--name HOST] [--max-dim N] [--points K]
                                          (measure THIS host, emit a model file)

The model FILE is plain text: one processor per line,
`name size:speed size:speed ...` (sizes in elements, speeds in MFlops).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("unexpected argument: {key}"));
        }
        if key == "--list" {
            flags.insert("list".to_owned(), String::new());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("{key} needs a value"))?;
        flags.insert(key.trim_start_matches("--").to_owned(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(HELP.to_owned());
    };
    let flags = parse_flags(&args[1..])?;

    match command.as_str() {
        "-h" | "--help" | "help" => {
            println!("{HELP}");
            Ok(())
        }
        "partition" => {
            let path = flags.get("model").ok_or("--model FILE is required")?;
            let n: u64 = flags
                .get("n")
                .ok_or("--n N is required")?
                .parse::<f64>()
                .map_err(|_| "unparsable --n".to_owned())? as u64;
            let algorithm = Algorithm::parse(
                flags.get("algorithm").map(String::as_str).unwrap_or("combined"),
            )
            .map_err(|e| e.to_string())?;
            let contents =
                std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let models = parse_models(&contents).map_err(|e| e.to_string())?;
            let out = commands::partition(&models, n, algorithm).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        "simulate-mm" => {
            let path = flags.get("model").ok_or("--model FILE is required")?;
            let dim: u64 = flags
                .get("dim")
                .ok_or("--dim N is required")?
                .parse::<f64>()
                .map_err(|_| "unparsable --dim".to_owned())? as u64;
            let single_ref: f64 = flags
                .get("single-ref")
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|_| "unparsable --single-ref".to_owned())?
                .unwrap_or(750_000.0);
            let contents =
                std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let models = parse_models(&contents).map_err(|e| e.to_string())?;
            let out = commands::simulate_mm(&models, dim, single_ref)
                .map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        "calibrate" => {
            let name = flags.get("name").map(String::as_str).unwrap_or("host");
            let max_dim: usize = flags
                .get("max-dim")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| "unparsable --max-dim".to_owned())?
                .unwrap_or(512);
            let points: usize = flags
                .get("points")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| "unparsable --points".to_owned())?
                .unwrap_or(8);
            let out =
                commands::calibrate(name, max_dim, points).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        "models" => {
            if flags.contains_key("list") {
                for tb in commands::TESTBEDS {
                    println!("{tb}");
                }
                return Ok(());
            }
            let testbed = flags.get("testbed").ok_or("--testbed NAME (or --list)")?;
            let out = commands::models(testbed).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n\n{HELP}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
