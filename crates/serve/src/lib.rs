//! `fpm-serve`: a partition-serving daemon for the functional performance
//! model.
//!
//! The paper's partitioning algorithms are fast (milliseconds) but the
//! models they consume are expensive to build and worth sharing: a cluster
//! is measured once (§3.1) and then partitioned many times, for many
//! problem sizes, by many applications. This crate turns the partitioners
//! into a long-lived network service:
//!
//! * [`registry`] — named clusters of speed functions, addressable by name
//!   or content fingerprint, shared across threads via
//!   [`fpm_core::speed::SharedCachedSpeed`], refined online by the
//!   `report` verb with a per-cluster epoch bumped on every accepted
//!   refinement;
//! * [`cache`] — a sharded LRU plan cache keyed by `(fingerprint, epoch,
//!   n, algorithm)` with single-flight deduplication of concurrent misses;
//! * [`engine`] — bounded admission over the process-wide
//!   [`fpm_exec::pool::WorkerPool`], with per-request deadlines and load
//!   shedding;
//! * [`metrics`] — lock-free counters and latency histograms, served by
//!   the `stats` verb and dumped on graceful shutdown;
//! * [`server`] / [`client`] — the line-delimited JSON TCP protocol
//!   ([`protocol`]) and a small blocking client;
//! * [`loadgen`] — a deterministic closed-loop load generator;
//! * [`json`] — the minimal, std-only JSON support everything above uses
//!   (the build environment is offline; no serde).
//!
//! Everything is `std`-only and deterministic: a cached plan is
//! bit-identical to recomputation by construction of the cache key, and
//! the integration tests check server responses against local solves on
//! seeded testkit clusters.

pub mod cache;
pub mod client;
pub mod engine;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{Client, PartitionReply, RegisterReply, ReportReply};
pub use engine::{solve, solve_warm, Engine, EngineConfig, Plan};
pub use loadgen::{LoadMode, LoadgenConfig, LoadgenReport};
pub use fpm_core::planner::AlgorithmId;
pub use protocol::ProtoError;
pub use registry::{Registry, ReportOutcome};
pub use server::{spawn, ServerConfig, ServerHandle};
