//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                # run everything, write results/*.csv
//! repro fig22a fig22b      # run selected experiments
//! repro --list             # list experiment ids
//! repro --out DIR fig21    # custom output directory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fpm_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--out DIR] (all | <experiment id>...)\n       repro --list"
                );
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_owned()),
        }
    }

    if ids.is_empty() {
        eprintln!("no experiments requested; try `repro all` or `repro --list`");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for id in ids {
        match run_experiment(&id) {
            Some(report) => {
                print!("{}", report.to_text());
                println!();
                if let Err(e) = report.write_csv(&out_dir) {
                    eprintln!("warning: could not write {}: {e}", out_dir.display());
                } else {
                    println!("  → {}", out_dir.join(format!("{id}.csv")).display());
                    println!();
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (see `repro --list`)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
