//! Seeded random heterogeneous-network generators.
//!
//! The paper targets "general-purpose common heterogeneous networks" well
//! beyond its two concrete testbeds (its Fig. 21 cost experiment uses up
//! to 1080 processors). This module generates arbitrary-size, reproducible
//! testbeds with realistic spreads of clock speed, memory size, cache size
//! and architecture mix, for scaling benchmarks and property tests.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::machine::{Arch, MachineSpec};
use crate::profile::AppProfile;
use crate::speed_model::MachineSpeed;

/// Configuration of a generated network.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of machines.
    pub machines: usize,
    /// RNG seed (same seed ⇒ same network).
    pub seed: u64,
    /// Minimum CPU clock in MHz.
    pub min_mhz: u32,
    /// Maximum CPU clock in MHz.
    pub max_mhz: u32,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self { machines: 12, seed: 0xFACE, min_mhz: 400, max_mhz: 3000 }
    }
}

/// Generates a reproducible random heterogeneous network.
pub fn random_testbed(cfg: ScenarioConfig) -> Vec<MachineSpec> {
    assert!(cfg.machines > 0);
    assert!(cfg.min_mhz > 0 && cfg.max_mhz > cfg.min_mhz);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let arches = [
        Arch::PentiumIii,
        Arch::Pentium4,
        Arch::Xeon,
        Arch::UltraSparc,
        Arch::GenericX86,
    ];
    let memory_menu_kb: [u64; 6] =
        [262_144, 524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608];
    let cache_menu_kb: [u64; 4] = [256, 512, 1024, 2048];

    (0..cfg.machines)
        .map(|i| {
            let arch = arches[rng.gen_range(0..arches.len())];
            let mhz = rng.gen_range(cfg.min_mhz..=cfg.max_mhz);
            let memory = memory_menu_kb[rng.gen_range(0..memory_menu_kb.len())];
            let cache = cache_menu_kb[rng.gen_range(0..cache_menu_kb.len())];
            // Free memory: 20–85 % of main, mimicking the spread of the
            // paper's Table 2 (X2 has 26 % free, X4 has 39 %, X11 has 80 %).
            let free = (memory as f64 * rng.gen_range(0.20..0.85)) as u64;
            let os = match arch {
                Arch::UltraSparc => "SunOS 5.8 (generated)",
                _ => "Linux 2.4 (generated)",
            };
            MachineSpec::new(&format!("G{i:04}"), os, arch, mhz, memory, cache)
                .with_free_memory(free)
        })
        .collect()
}

/// Speed models for a generated network and one application.
pub fn random_cluster(cfg: ScenarioConfig, app: AppProfile) -> Vec<MachineSpeed> {
    random_testbed(cfg).iter().map(|m| MachineSpeed::for_app(m, app)).collect()
}

/// The sorting scenario: measured **cost models** for a sort-shaped
/// workload on a generated network.
///
/// A comparison sort does `Θ(x·log x)` work on `x` elements, so each
/// machine's cost is *measured in the time domain* rather than derived
/// from a speed function: `t(x) = x·log₂(max(x, 2)) / s(x)`, sampled on a
/// geometric grid across the machine's modelled interval (through the
/// cache knee and into paging, where `s` falls and `t` steepens). The
/// returned `(name, [(x, t), …])` pairs are exactly the `cost_knots`
/// shape the serve daemon registers and `fpm-core`'s
/// `PiecewiseLinearCost` loads — strictly increasing in both
/// coordinates because the underlying speeds are admissible.
pub fn sort_cost_models(cfg: ScenarioConfig, samples: usize) -> Vec<(String, Vec<(f64, f64)>)> {
    use fpm_core::speed::SpeedFunction;
    assert!(samples >= 2, "a cost model needs at least two knots");
    // Streaming comparisons behave like the paper's ArrayOpsF profile:
    // memory-hierarchy friendly until the working set spills.
    random_cluster(cfg, AppProfile::ArrayOpsF)
        .iter()
        .map(|m| {
            let (lo, hi) = m.model_interval();
            let lo = lo.max(2.0);
            let ratio = (hi / lo).powf(1.0 / (samples - 1) as f64);
            let mut knots: Vec<(f64, f64)> = Vec::with_capacity(samples);
            for k in 0..samples {
                let x = lo * ratio.powi(k as i32);
                let t = x * x.max(2.0).log2() / m.speed(x);
                // Floating-point guard: drop a sample that fails to
                // advance both coordinates instead of emitting an
                // inadmissible knot.
                if knots.last().map_or(true, |&(px, pt)| x > px && t > pt) {
                    knots.push((x, t));
                }
            }
            (m.name().to_owned(), knots)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_core::speed::{check_single_intersection, SpeedFunction};

    #[test]
    fn generation_is_reproducible() {
        let a = random_testbed(ScenarioConfig::default());
        let b = random_testbed(ScenarioConfig::default());
        assert_eq!(a, b);
        let c = random_testbed(ScenarioConfig { seed: 1, ..ScenarioConfig::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_machines_are_plausible() {
        let specs =
            random_testbed(ScenarioConfig { machines: 50, ..ScenarioConfig::default() });
        assert_eq!(specs.len(), 50);
        for m in &specs {
            assert!(m.cpu_mhz >= 400 && m.cpu_mhz <= 3000);
            assert!(m.free_memory_kb < m.main_memory_kb);
            assert!(m.free_memory_kb > 0);
            assert!(m.cache_kb >= 256);
        }
    }

    #[test]
    fn generated_models_satisfy_shape_requirement() {
        for app in AppProfile::all() {
            let cluster = random_cluster(
                ScenarioConfig { machines: 16, seed: 7, ..ScenarioConfig::default() },
                app,
            );
            for m in cluster {
                let (_a, b) = m.model_interval();
                assert!(
                    check_single_intersection(&m, 64.0, b, 300).is_ok(),
                    "{} / {}",
                    m.name(),
                    app.name()
                );
                assert!(m.speed(1e6) > 0.0);
            }
        }
    }

    #[test]
    fn sort_cost_models_are_admissible_and_solvable() {
        use fpm_core::cost::{CostFunction, PiecewiseLinearCost};
        use fpm_core::partition::oracle;
        let models = sort_cost_models(
            ScenarioConfig { machines: 10, seed: 42, ..ScenarioConfig::default() },
            24,
        );
        assert_eq!(models.len(), 10);
        let costs: Vec<PiecewiseLinearCost> = models
            .iter()
            .map(|(name, knots)| {
                assert!(knots.len() >= 2, "{name}: degenerate model");
                for w in knots.windows(2) {
                    assert!(w[1].0 > w[0].0 && w[1].1 > w[0].1, "{name}: {w:?}");
                }
                PiecewiseLinearCost::new(knots.clone()).unwrap_or_else(|e| panic!("{name}: {e}"))
            })
            .collect();
        // Paging makes time superlinear: cost per element grows.
        for (model, (name, _)) in costs.iter().zip(&models) {
            let (lo, hi) = (model.knots()[0].0, model.knots()[model.len() - 1].0);
            assert!(
                model.time(hi) / hi > model.time(lo) / lo,
                "{name}: paging never steepened the cost"
            );
        }
        // The measured cluster solves in the cost domain end to end.
        let n = 50_000_000u64;
        let report = oracle::solve(n, &costs).expect("cost-domain oracle");
        assert_eq!(report.distribution.total(), n);
    }

    #[test]
    fn large_cluster_partitions_cleanly() {
        use fpm_core::partition::{CombinedPartitioner, Partitioner};
        let cluster = random_cluster(
            ScenarioConfig { machines: 100, seed: 3, ..ScenarioConfig::default() },
            AppProfile::MatrixMult,
        );
        let n = 3u64 * 30_000 * 30_000;
        let r = CombinedPartitioner::new().partition(n, &cluster).unwrap();
        assert_eq!(r.distribution.total(), n);
        assert!(r.distribution.counts().iter().filter(|&&x| x > 0).count() > 50);
    }
}
