//! Robustness and failure-injection tests: adversarial measurers, dying
//! machines, degenerate clusters and extreme scales.

use fpm::prelude::*;
use fpm_core::speed::builder::build_speed_band;

#[test]
fn builder_survives_nan_and_negative_measurements() {
    // A flaky measurer occasionally returns garbage; the builder must
    // either produce a valid model or return a clean error — never panic
    // or emit an invalid model.
    let truth = AnalyticSpeed::decreasing(100.0, 1e6, 2.0);
    let mut call = 0usize;
    let mut flaky = |x: f64| {
        call += 1;
        match call % 5 {
            0 => f64::NAN,
            3 => -25.0,
            _ => truth.speed(x),
        }
    };
    match build_speed_band(&mut flaky, 1e3, 1e8, BuilderConfig::default()) {
        Ok(out) => {
            assert!(
                fpm_core::speed::check_single_intersection(&out.midline, 1e3, 9e7, 200).is_ok()
            );
        }
        Err(e) => {
            // Acceptable failure modes only.
            assert!(matches!(
                e,
                Error::InvalidSpeedFunction { .. } | Error::InvalidParameter(_)
            ));
        }
    }
}

#[test]
fn builder_handles_all_zero_measurer() {
    let mut dead = |_x: f64| 0.0;
    let e = build_speed_band(&mut dead, 1e3, 1e6, BuilderConfig::default()).unwrap_err();
    assert!(matches!(e, Error::InvalidParameter(_)));
}

#[test]
fn dying_machine_is_worked_around() {
    // One machine's model collapses to zero beyond a tiny size (it "dies"
    // under memory pressure); the partitioners route the load to the
    // healthy machines.
    let dying = PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (5_000.0, 0.0)]).unwrap();
    let healthy = AnalyticSpeed::constant(50.0);
    let funcs: Vec<Box<dyn SpeedFunction>> = vec![Box::new(dying), Box::new(healthy)];
    let r = CombinedPartitioner::new().partition(10_000_000, &funcs).unwrap();
    assert_eq!(r.distribution.total(), 10_000_000);
    assert!(
        r.distribution.counts()[0] <= 5_000,
        "dying machine must not receive beyond its capacity: {:?}",
        r.distribution
    );
    assert!(r.makespan.is_finite());
}

#[test]
fn whole_cluster_dead_reports_insufficient_capacity() {
    let dying = PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (5_000.0, 0.0)]).unwrap();
    let funcs = vec![dying.clone(), dying];
    let e = CombinedPartitioner::new().partition(10_000_000, &funcs).unwrap_err();
    assert!(matches!(e, Error::InsufficientCapacity { .. }));
}

#[test]
fn fewer_elements_than_processors() {
    let funcs: Vec<ConstantSpeed> = (1..=16).map(|k| ConstantSpeed::new(k as f64)).collect();
    for n in 1..=8u64 {
        let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        assert_eq!(r.distribution.total(), n);
        // The elements go to the fastest machines.
        let idle = r.distribution.counts().iter().filter(|&&x| x == 0).count();
        assert!(idle >= funcs.len() - n as usize, "{:?}", r.distribution);
    }
}

#[test]
fn identical_processors_split_evenly() {
    let funcs: Vec<AnalyticSpeed> =
        (0..7).map(|_| AnalyticSpeed::unimodal(100.0, 1e3, 1e6, 2.0)).collect();
    let n = 7_000_001u64;
    let r = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
    let min = r.distribution.counts().iter().min().unwrap();
    let max = r.distribution.counts().iter().max().unwrap();
    assert!(max - min <= 1, "identical machines split evenly: {:?}", r.distribution);
}

#[test]
fn extreme_speed_scales() {
    // Machines differing by 12 orders of magnitude: the optimiser must not
    // lose precision catastrophically.
    let funcs: Vec<Box<dyn SpeedFunction>> = vec![
        Box::new(ConstantSpeed::new(1e-3)),
        Box::new(ConstantSpeed::new(1e9)),
    ];
    let n = 1_000_000_000u64;
    let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
    assert_eq!(r.distribution.total(), n);
    // Proportional: the slow machine gets ~1e-12 of the work ⇒ 0 or 1
    // elements.
    assert!(r.distribution.counts()[0] <= 2, "{:?}", r.distribution);
}

#[test]
fn huge_problem_sizes_stay_consistent() {
    let funcs: Vec<AnalyticSpeed> = vec![
        AnalyticSpeed::constant(100.0),
        AnalyticSpeed::decreasing(300.0, 1e12, 2.0),
        AnalyticSpeed::saturating(200.0, 1e6),
    ];
    let n = 1_000_000_000_000_000u64; // 1e15: within f64's exact-integer range
    let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
    assert_eq!(r.distribution.total(), n);
    assert!(fpm_core::partition::oracle::is_exchange_optimal(&r.distribution, &funcs, 1e-6));
}

#[test]
fn makespan_is_monotone_in_n() {
    let cluster = SimCluster::table2(AppProfile::MatrixMult);
    let mut last = 0.0;
    for dim in [4_000u64, 8_000, 12_000, 16_000, 24_000] {
        let n = workload::mm_elements(dim);
        let r = CombinedPartitioner::new().partition(n, cluster.funcs()).unwrap();
        assert!(
            r.makespan >= last,
            "more work cannot take less time: {} after {last} at dim {dim}",
            r.makespan
        );
        last = r.makespan;
    }
}

#[test]
fn trait_objects_and_mixed_model_kinds_work_together() {
    // Piece-wise models, analytic models and constants in one cluster via
    // trait objects — the downstream-user configuration.
    let built = PiecewiseLinearSpeed::new(vec![(1e3, 120.0), (1e7, 80.0), (1e9, 0.0)]).unwrap();
    let funcs: Vec<Box<dyn SpeedFunction>> = vec![
        Box::new(built),
        Box::new(AnalyticSpeed::paging(200.0, 1e6, 3.0)),
        Box::new(ConstantSpeed::new(60.0)),
    ];
    for alg_result in [
        BisectionPartitioner::new().partition(5_000_000, &funcs),
        ModifiedPartitioner::new().partition(5_000_000, &funcs),
        CombinedPartitioner::new().partition(5_000_000, &funcs),
    ] {
        let r = alg_result.unwrap();
        assert_eq!(r.distribution.total(), 5_000_000);
    }
}

#[test]
fn vgb_with_dying_machine_still_covers_blocks() {
    let dying = PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (200_000.0, 0.0)]).unwrap();
    let funcs: Vec<Box<dyn SpeedFunction>> = vec![
        Box::new(dying),
        Box::new(AnalyticSpeed::constant(80.0)),
        Box::new(AnalyticSpeed::constant(40.0)),
    ];
    let d = variable_group_block(2_048, 64, &funcs, &CombinedPartitioner::new()).unwrap();
    assert_eq!(d.total_blocks(), 32);
    let per = d.blocks_per_processor(3);
    assert!(per[1] > per[0], "healthy machines carry the load: {per:?}");
}

#[test]
fn single_number_handles_reference_beyond_all_models() {
    // Sampling far beyond every machine's modelled range: speeds clamp to
    // the final knot (possibly zero) — the partitioner must degrade
    // gracefully, not panic.
    let m1 = PiecewiseLinearSpeed::new(vec![(1e3, 100.0), (1e6, 0.0)]).unwrap();
    let m2 = PiecewiseLinearSpeed::new(vec![(1e3, 50.0), (1e7, 25.0)]).unwrap();
    let funcs = vec![m1, m2];
    let r = SingleNumberPartitioner::at_size(1e12).partition(1_000, &funcs).unwrap();
    assert_eq!(r.distribution.total(), 1_000);
    assert_eq!(r.distribution.counts()[0], 0, "zero-speed machine gets nothing");
}
