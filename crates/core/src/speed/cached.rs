//! Memoizing wrapper for speed functions.
//!
//! The partitioning algorithms probe each processor's speed at the same
//! abscissas many times over: the bounding-line intersections are
//! re-evaluated as the bracket shrinks, the fine-tuning heap queries
//! `time()` at the same `2p` candidate integer points repeatedly, and the
//! combined algorithm's probing step revisits sizes the chosen algorithm
//! then probes again. [`CachedSpeed`] computes each distinct abscissa once
//! and replays the result — bit-identical by construction, since the
//! cached value *is* the inner function's output.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use super::function::SpeedFunction;

/// A [`SpeedFunction`] decorator that memoizes `speed(x)` per abscissa.
///
/// Keys are the raw IEEE-754 bits of `x`, so every distinct input value
/// (including `-0.0` vs `0.0`) gets its own slot and the replayed output is
/// exactly the inner function's. The cache lives behind a [`RefCell`]: the
/// wrapper is single-threaded by design, matching the partitioners' inner
/// loops (use one wrapper per run, not a shared global).
#[derive(Debug)]
pub struct CachedSpeed<F> {
    inner: F,
    cache: RefCell<HashMap<u64, f64>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<F: SpeedFunction> CachedSpeed<F> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            cache: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Number of probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of probes that had to evaluate the inner function.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops all memoized entries (e.g. between runs against a function
    /// whose underlying measurements were refreshed).
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }
}

impl<F: SpeedFunction> SpeedFunction for CachedSpeed<F> {
    fn speed(&self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&s) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return s;
        }
        let s = self.inner.speed(x);
        self.misses.set(self.misses.get() + 1);
        self.cache.borrow_mut().insert(key, s);
        s
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }

    fn speeds_at(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "speeds_at buffers must match in length");
        // Route through the memoized point lookup so batched and point-wise
        // probes share one cache (and stay bit-identical trivially).
        for (&x, o) in xs.iter().zip(out.iter_mut()) {
            *o = self.speed(x);
        }
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        self.inner.intersect_slope(slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, PiecewiseLinearSpeed};

    #[test]
    fn caches_repeated_probes() {
        let f = CachedSpeed::new(AnalyticSpeed::decreasing(200.0, 1e6, 2.0));
        let a = f.speed(1234.5);
        let b = f.speed(1234.5);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(f.misses(), 1);
        assert_eq!(f.hits(), 1);
    }

    #[test]
    fn agrees_with_inner_function() {
        let inner = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        let f = CachedSpeed::new(inner.clone());
        for k in 0..200 {
            let x = 10f64.powf(k as f64 * 0.04);
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
            // Second round: every probe must come from the cache.
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
        }
        assert_eq!(f.misses(), 200);
        assert_eq!(f.hits(), 200);
    }

    #[test]
    fn time_goes_through_the_cache() {
        let f = CachedSpeed::new(AnalyticSpeed::constant(100.0));
        let _ = f.time(50.0);
        let _ = f.time(50.0);
        assert_eq!(f.misses(), 1);
        assert_eq!(f.hits(), 1);
    }

    #[test]
    fn forwards_structure_queries() {
        let inner =
            PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (1000.0, 50.0)]).unwrap();
        let f = CachedSpeed::new(inner.clone());
        assert_eq!(f.max_size(), inner.max_size());
        assert_eq!(f.intersect_slope(1e-3), inner.intersect_slope(1e-3));
    }

    #[test]
    fn clear_resets_counters() {
        let f = CachedSpeed::new(AnalyticSpeed::constant(10.0));
        let _ = f.speed(1.0);
        let _ = f.speed(1.0);
        f.clear();
        assert_eq!(f.hits(), 0);
        assert_eq!(f.misses(), 0);
        let _ = f.speed(1.0);
        assert_eq!(f.misses(), 1);
    }
}
