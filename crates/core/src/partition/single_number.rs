//! The classical single-number baseline.
//!
//! Every pre-existing model the paper surveys (\[1\]–\[11\]) represents each
//! processor by one positive number and distributes elements proportionally
//! to it. The number is obtained by benchmarking every processor at one
//! common *reference size* — which is exactly the model's weakness: the
//! relative speeds measured at that size are wrong at any size where the
//! memory-hierarchy behaviour differs (paper Fig. 3), and the paper shows
//! the resulting distribution can even be *inversely* proportional to the
//! true speeds once paging sets in.
//!
//! Two rounding variants are provided, matching the complexities quoted in
//! paper §2: the naive incremental `O(p²)` algorithm of reference \[6\] and
//! the heap-based `O(p·log p)` refinement.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::problem::{empty_report, validate_processors, Distribution, PartitionReport,
                     Partitioner};
use crate::cost::CostFunction;
use crate::error::{Error, Result};
use crate::trace::Trace;

/// How the proportional distribution's integer residue is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundingVariant {
    /// Scan all processors for each residue element (`O(p²)`), the naive
    /// implementation of reference \[6\].
    Naive,
    /// Heap-based residue assignment (`O(p·log p)`).
    #[default]
    Heap,
}

/// Partitioner using the single-number performance model.
#[derive(Debug, Clone, Copy)]
pub struct SingleNumberPartitioner {
    /// Problem size at which every processor's speed is sampled to obtain
    /// its single number (the paper's experiments use e.g. the speed of a
    /// 500×500 or 4000×4000 matrix multiplication).
    pub reference_size: f64,
    /// Rounding variant.
    pub variant: RoundingVariant,
}

impl SingleNumberPartitioner {
    /// Creates a partitioner sampling speeds at `reference_size` elements.
    pub fn at_size(reference_size: f64) -> Self {
        assert!(
            reference_size.is_finite() && reference_size > 0.0,
            "reference size must be positive and finite"
        );
        Self { reference_size, variant: RoundingVariant::default() }
    }

    /// Selects the rounding variant.
    pub fn with_variant(mut self, variant: RoundingVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Partitions using explicit constant speeds (already-sampled numbers).
    pub fn partition_with_speeds(&self, n: u64, speeds: &[f64]) -> Result<Distribution> {
        if speeds.is_empty() {
            return Err(Error::NoProcessors);
        }
        if speeds.iter().any(|s| !(s.is_finite() && *s >= 0.0)) {
            return Err(Error::InvalidSpeedFunction {
                processor: speeds
                    .iter()
                    .position(|s| !(s.is_finite() && *s >= 0.0))
                    .unwrap_or(0),
                reason: "single-number speeds must be non-negative and finite",
            });
        }
        let total_speed: f64 = speeds.iter().sum();
        if total_speed <= 0.0 {
            return Err(Error::InvalidSpeedFunction {
                processor: 0,
                reason: "at least one processor must have positive speed",
            });
        }
        // Proportional floors, then residue assignment.
        let mut counts: Vec<u64> =
            speeds.iter().map(|&s| (n as f64 * s / total_speed).floor() as u64).collect();
        let assigned: u64 = counts.iter().sum();
        debug_assert!(assigned <= n);
        let residue = n - assigned;
        match self.variant {
            RoundingVariant::Naive => naive_residue(&mut counts, speeds, residue),
            RoundingVariant::Heap => heap_residue(&mut counts, speeds, residue),
        }
        Ok(Distribution::new(counts))
    }
}

/// The naive `O(p²)` residue loop: for each remaining element scan all
/// processors for the one minimising the post-assignment time `(x_i+1)/s_i`.
fn naive_residue(counts: &mut [u64], speeds: &[f64], residue: u64) {
    for _ in 0..residue {
        let mut best = usize::MAX;
        let mut best_time = f64::INFINITY;
        for (i, (&c, &s)) in counts.iter().zip(speeds).enumerate() {
            if s <= 0.0 {
                continue;
            }
            let t = (c + 1) as f64 / s;
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        counts[best] += 1;
    }
}

/// Heap-based residue loop: `O(p + residue·log p)`; as `residue < p`, this
/// is `O(p·log p)` overall.
fn heap_residue(counts: &mut [u64], speeds: &[f64], residue: u64) {
    #[derive(PartialEq)]
    struct Key(f64, usize);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<Key>> = counts
        .iter()
        .zip(speeds)
        .enumerate()
        .filter(|(_, (_, &s))| s > 0.0)
        .map(|(i, (&c, &s))| Reverse(Key((c + 1) as f64 / s, i)))
        .collect();
    for _ in 0..residue {
        let Reverse(Key(_, i)) = heap.pop().expect("positive total speed guarantees candidates");
        counts[i] += 1;
        heap.push(Reverse(Key((counts[i] + 1) as f64 / speeds[i], i)));
    }
}

impl Partitioner for SingleNumberPartitioner {
    fn partition<F: CostFunction>(&self, n: u64, funcs: &[F]) -> Result<PartitionReport> {
        validate_processors(funcs)?;
        if n == 0 {
            return Ok(empty_report(funcs.len()));
        }
        let speeds: Vec<f64> =
            funcs.iter().map(|f| f.throughput(self.reference_size).max(0.0)).collect();
        let distribution = self.partition_with_speeds(n, &speeds)?;
        // Makespan is evaluated under the *functional* model: the whole
        // point of the paper's comparison is that the single-number
        // distribution is executed on machines whose true speed varies with
        // the received size.
        Ok(PartitionReport::from_distribution(distribution, funcs, Trace::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    #[test]
    fn proportional_for_constant_speeds() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(50.0)];
        let r = SingleNumberPartitioner::at_size(1000.0).partition(300, &funcs).unwrap();
        assert_eq!(r.distribution.counts(), &[200, 100]);
        assert_eq!(r.distribution.total(), 300);
    }

    #[test]
    fn naive_and_heap_agree() {
        let speeds = vec![33.0, 77.0, 11.0, 59.0, 101.0];
        for n in [1u64, 7, 100, 999, 12345] {
            let naive = SingleNumberPartitioner::at_size(1.0)
                .with_variant(RoundingVariant::Naive)
                .partition_with_speeds(n, &speeds)
                .unwrap();
            let heap = SingleNumberPartitioner::at_size(1.0)
                .with_variant(RoundingVariant::Heap)
                .partition_with_speeds(n, &speeds)
                .unwrap();
            assert_eq!(naive, heap, "variants diverge at n = {n}");
        }
    }

    #[test]
    fn residue_lands_on_fastest() {
        let speeds = vec![10.0, 10.0, 10.0, 1000.0];
        let d = SingleNumberPartitioner::at_size(1.0)
            .partition_with_speeds(7, &speeds)
            .unwrap();
        assert_eq!(d.total(), 7);
        assert!(d.counts()[3] >= 6, "fast processor takes nearly everything: {d:?}");
    }

    #[test]
    fn zero_speed_processors_get_nothing() {
        let speeds = vec![0.0, 50.0];
        let d = SingleNumberPartitioner::at_size(1.0)
            .partition_with_speeds(10, &speeds)
            .unwrap();
        assert_eq!(d.counts(), &[0, 10]);
    }

    #[test]
    fn all_zero_speeds_error() {
        let e = SingleNumberPartitioner::at_size(1.0)
            .partition_with_speeds(10, &[0.0, 0.0])
            .unwrap_err();
        assert!(matches!(e, Error::InvalidSpeedFunction { .. }));
    }

    #[test]
    fn reference_size_matters_for_functional_targets() {
        // One machine pages beyond 1e6 elements, the other never does. A
        // small reference size makes the pager look fast; at a large
        // reference it looks slow — the distributions must differ.
        let funcs = vec![
            AnalyticSpeed::paging(300.0, 1e6, 3.0),
            AnalyticSpeed::constant(100.0),
        ];
        let small = SingleNumberPartitioner::at_size(1e4).partition(4_000_000, &funcs).unwrap();
        let large = SingleNumberPartitioner::at_size(8e6).partition(4_000_000, &funcs).unwrap();
        assert!(
            small.distribution.counts()[0] > large.distribution.counts()[0],
            "small ref: {:?}, large ref: {:?}",
            small.distribution,
            large.distribution
        );
    }

    #[test]
    fn empty_processors_rejected() {
        let funcs: Vec<ConstantSpeed> = vec![];
        assert!(matches!(
            SingleNumberPartitioner::at_size(1.0).partition(10, &funcs),
            Err(Error::NoProcessors)
        ));
    }

    #[test]
    fn n_zero_gives_empty_distribution() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        let r = SingleNumberPartitioner::at_size(1.0).partition(0, &funcs).unwrap();
        assert_eq!(r.distribution.counts(), &[0]);
    }
}
