//! Offline vendored shim standing in for `rand_chacha` 0.3. Exposes a
//! [`ChaCha8Rng`] with the same type name and `SeedableRng`/`RngCore`
//! surface the workspace uses. The generator is a genuine (if compact)
//! ChaCha with 8 rounds; it is deterministic per seed, which is the only
//! property the workspace relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha quarter-round on four words of the state.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher used as a deterministic random generator,
/// with 8 double-rounds per block.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    input: [u32; 16],
    /// Buffered output words from the last generated block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "empty".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | (self.input[13] as u64) << 32).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64.
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut input = [0u32; 16];
        // "expand 32-byte k" constants.
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646E;
        input[2] = 0x7962_2D32;
        input[3] = 0x6B20_6574;
        input[4..12].copy_from_slice(&key);
        Self { input, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
