//! A small blocking client for the serve protocol — used by the CLI, the
//! load generator and the integration tests.
//!
//! Three request shapes are supported, matching the server's event loop:
//! one-at-a-time ([`Client::partition`]), pipelined windows of independent
//! requests ([`Client::partition_pipelined`] — many lines in flight, replies
//! read back in request order), and the `partition_batch` verb
//! ([`Client::partition_batch`] — many sizes in one round-trip).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;
use crate::protocol::ProtoError;
use fpm_core::planner::AlgorithmId;

/// Error code for a shard that cannot be reached or died mid-request
/// (connect refused, connection reset, broken pipe, server-side close).
/// The router's failover path keys on this code to tell "the backend is
/// gone — try a replica" apart from genuine protocol errors that a retry
/// would only repeat.
pub const SHARD_UNAVAILABLE: &str = "shard_unavailable";

/// A connected protocol client (one request *window* in flight at a time).
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Duration,
}

/// True when an io error kind means the peer process is unreachable or
/// gone (as opposed to a protocol or timeout problem).
fn is_unavailable(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected
    )
}

/// A successful `partition` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReply {
    /// Per-machine element counts.
    pub counts: Vec<u64>,
    /// Predicted makespan.
    pub makespan: f64,
    /// Solver search steps.
    pub steps: u64,
    /// True when the server answered from its plan cache.
    pub cached: bool,
    /// Cluster content fingerprint.
    pub fingerprint: String,
}

/// One inline model for [`Client::register_inline_mixed`]: `(machine
/// name, knots, cost)`. The knots are `(size, speed)` pairs when `cost`
/// is false (the `knots` wire field) and measured `(size, time)` pairs
/// when it is true (the `cost_knots` wire field).
pub type InlineModel = (String, Vec<(f64, f64)>, bool);

/// A successful `register` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterReply {
    /// Cluster content fingerprint.
    pub fingerprint: String,
    /// Machine names, in model order.
    pub machines: Vec<String>,
}

/// A successful `report` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportReply {
    /// True when the refiner accepted the observation and re-fit the model.
    pub accepted: bool,
    /// `"refined"` on acceptance, otherwise the rejection reason
    /// (`"in_band"`, `"pending"`, `"outlier"`, …).
    pub reason: String,
    /// The cluster's epoch after the report.
    pub epoch: u64,
    /// The machine the report applied to.
    pub machine: String,
    /// Cluster content fingerprint after the report (changes on refit).
    pub fingerprint: String,
}

impl Client {
    /// Connects with a read timeout (covers slow solves; pass generously).
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> std::io::Result<Self> {
        Self::connect_timeout(addr, None, read_timeout)
    }

    /// Connects with an optional bound on the TCP connect itself plus a
    /// read timeout. The same bound doubles as the write timeout, so a
    /// stalled server cannot wedge the client in `send` either.
    pub fn connect_timeout(
        addr: SocketAddr,
        connect_timeout: Option<Duration>,
        read_timeout: Duration,
    ) -> std::io::Result<Self> {
        let stream = match connect_timeout {
            Some(bound) => TcpStream::connect_timeout(&addr, bound)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(connect_timeout)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
            addr,
            connect_timeout,
            read_timeout,
        })
    }

    /// Connects with capped exponential backoff: `attempts` tries with
    /// sleeps of `base`, `2·base`, `4·base`, … capped at `cap` between
    /// them. Only refused/reset connections are retried — a daemon still
    /// binding its port, or restarting, is exactly the case backoff is
    /// for; anything else fails immediately. A final failure surfaces as
    /// [`SHARD_UNAVAILABLE`].
    pub fn connect_with_backoff(
        addr: SocketAddr,
        connect_timeout: Option<Duration>,
        read_timeout: Duration,
        attempts: u32,
        base: Duration,
        cap: Duration,
    ) -> Result<Self, ProtoError> {
        let mut delay = base;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(cap);
            }
            match Self::connect_timeout(addr, connect_timeout, read_timeout) {
                Ok(client) => return Ok(client),
                Err(e) if is_unavailable(e.kind()) || e.kind() == ErrorKind::TimedOut => {
                    last = Some(e);
                }
                Err(e) => {
                    return Err(ProtoError::new(
                        "internal",
                        format!("connect to {addr} failed: {e}"),
                    ))
                }
            }
        }
        let detail = last.map(|e| e.to_string()).unwrap_or_else(|| "unreachable".into());
        Err(ProtoError::new(
            SHARD_UNAVAILABLE,
            format!("connect to {addr} failed after {} attempts: {detail}", attempts.max(1)),
        ))
    }

    /// The address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the underlying connection with a fresh one to the same
    /// address (same timeouts), with capped exponential backoff. Any
    /// request in flight on the old connection is abandoned.
    pub fn reconnect(
        &mut self,
        attempts: u32,
        base: Duration,
        cap: Duration,
    ) -> Result<(), ProtoError> {
        let fresh = Self::connect_with_backoff(
            self.addr,
            self.connect_timeout,
            self.read_timeout,
            attempts,
            base,
            cap,
        )?;
        *self = fresh;
        Ok(())
    }

    /// Sends one newline-terminated frame, handling short writes and
    /// interrupted syscalls explicitly — `write` may move only part of the
    /// frame when the socket buffer is tight (deep pipelining does exactly
    /// that), and a write timeout surfaces as `WouldBlock`.
    pub(crate) fn send_line(&mut self, line: &str) -> Result<(), ProtoError> {
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        self.send_bytes(&frame)
    }

    /// Writes pre-framed bytes (one or many `\n`-terminated requests) in
    /// one syscall where possible — pipelining callers batch a whole
    /// window per write.
    pub(crate) fn send_bytes(&mut self, frame: &[u8]) -> Result<(), ProtoError> {
        let mut written = 0usize;
        while written < frame.len() {
            match self.writer.write(&frame[written..]) {
                Ok(0) => {
                    return Err(ProtoError::new(SHARD_UNAVAILABLE, "server closed the connection"))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ProtoError::new("internal", "send timed out"))
                }
                Err(e) if is_unavailable(e.kind()) => {
                    return Err(ProtoError::new(SHARD_UNAVAILABLE, format!("send failed: {e}")))
                }
                Err(e) => return Err(ProtoError::new("internal", format!("send failed: {e}"))),
            }
        }
        Ok(())
    }

    /// Reads one raw response line into `reply` (cleared first). The
    /// throughput-sensitive callers parse it with the borrowing parser.
    pub(crate) fn recv_line(&mut self, reply: &mut String) -> Result<(), ProtoError> {
        reply.clear();
        self.reader.read_line(reply).map_err(|e| {
            if is_unavailable(e.kind()) {
                ProtoError::new(SHARD_UNAVAILABLE, format!("recv failed: {e}"))
            } else {
                ProtoError::new("internal", format!("recv failed: {e}"))
            }
        })?;
        if reply.is_empty() {
            return Err(ProtoError::new(SHARD_UNAVAILABLE, "server closed the connection"));
        }
        Ok(())
    }

    /// Reads one response line and parses it.
    pub(crate) fn recv_reply(&mut self) -> Result<Json, ProtoError> {
        let mut reply = String::new();
        self.recv_line(&mut reply)?;
        Json::parse(&reply)
            .map_err(|e| ProtoError::new("internal", format!("unparsable response: {e}")))
    }

    /// Sends one raw request line, returns the parsed response object.
    pub fn request_raw(&mut self, line: &str) -> Result<Json, ProtoError> {
        self.send_line(line)?;
        self.recv_reply()
    }

    /// Sends one raw request line and reads the raw response line into
    /// `reply` (cleared first; trailing newline stripped). The router's
    /// forwarding path uses this to relay shard replies byte-identically —
    /// re-rendering through a parser could perturb float formatting.
    pub fn request_line(&mut self, line: &str, reply: &mut String) -> Result<(), ProtoError> {
        self.send_line(line)?;
        self.recv_line(reply)?;
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(())
    }

    /// Sends a request and lifts protocol-level errors into `ProtoError`.
    fn request_ok(&mut self, line: &str) -> Result<Json, ProtoError> {
        lift_ok(self.request_raw(line)?)
    }

    /// Registers a cluster from inline `(name, knots)` speed models.
    pub fn register_inline(
        &mut self,
        cluster: &str,
        models: &[(String, Vec<(f64, f64)>)],
    ) -> Result<RegisterReply, ProtoError> {
        let mixed: Vec<InlineModel> =
            models.iter().map(|(n, k)| (n.clone(), k.clone(), false)).collect();
        self.register_inline_mixed(cluster, &mixed)
    }

    /// Registers a cluster from inline models, each carrying either
    /// `(size, speed)` knots (`cost == false`, the `knots` wire field) or
    /// measured `(size, time)` cost knots (`cost == true`, sent as the
    /// `cost_knots` wire field). Speed and cost machines may be mixed
    /// freely within one cluster.
    pub fn register_inline_mixed(
        &mut self,
        cluster: &str,
        models: &[InlineModel],
    ) -> Result<RegisterReply, ProtoError> {
        let models_json = Json::Arr(
            models
                .iter()
                .map(|(name, knots, cost)| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(name.clone())),
                        (
                            if *cost { "cost_knots".into() } else { "knots".into() },
                            Json::Arr(
                                knots
                                    .iter()
                                    .map(|&(x, s)| Json::Arr(vec![Json::num(x), Json::num(s)]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let req = Json::Obj(vec![
            ("verb".into(), Json::str("register")),
            ("cluster".into(), Json::str(cluster)),
            ("models".into(), models_json),
        ]);
        let v = self.request_ok(&req.to_string())?;
        parse_register_reply(&v)
    }

    /// Registers a simnet testbed cluster built server-side.
    pub fn register_testbed(
        &mut self,
        cluster: &str,
        testbed: &str,
        app: &str,
        seed: u64,
    ) -> Result<RegisterReply, ProtoError> {
        let req = Json::Obj(vec![
            ("verb".into(), Json::str("register")),
            ("cluster".into(), Json::str(cluster)),
            (
                "testbed".into(),
                Json::Obj(vec![
                    ("name".into(), Json::str(testbed)),
                    ("app".into(), Json::str(app)),
                    ("seed".into(), Json::uint(seed)),
                ]),
            ),
        ]);
        let v = self.request_ok(&req.to_string())?;
        parse_register_reply(&v)
    }

    /// Partitions `n` elements over a registered cluster.
    pub fn partition(
        &mut self,
        cluster: &str,
        n: u64,
        algorithm: AlgorithmId,
        deadline_ms: Option<u64>,
    ) -> Result<PartitionReply, ProtoError> {
        let mut fields = vec![
            ("verb".into(), Json::str("partition")),
            ("cluster".into(), Json::str(cluster)),
            ("n".into(), Json::uint(n)),
            ("algorithm".into(), Json::str(algorithm.to_string())),
        ];
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".into(), Json::uint(ms)));
        }
        let v = self.request_ok(&Json::Obj(fields).to_string())?;
        parse_partition_reply(&v)
    }

    /// Pipelines one `partition` request per size, keeping up to `depth`
    /// requests in flight, and reads the replies back in request order
    /// (the server guarantees order even when solves complete out of
    /// order). All replies are drained even when one carries an error, so
    /// the connection stays usable afterwards.
    pub fn partition_pipelined(
        &mut self,
        cluster: &str,
        ns: &[u64],
        algorithm: AlgorithmId,
        deadline_ms: Option<u64>,
        depth: usize,
    ) -> Result<Vec<Result<PartitionReply, ProtoError>>, ProtoError> {
        let depth = depth.max(1);
        let mut replies = Vec::with_capacity(ns.len());
        let mut in_flight: VecDeque<u64> = VecDeque::with_capacity(depth);
        let mut next = 0usize;
        while replies.len() < ns.len() {
            while next < ns.len() && in_flight.len() < depth {
                let mut fields = vec![
                    ("id".into(), Json::uint(next as u64)),
                    ("verb".into(), Json::str("partition")),
                    ("cluster".into(), Json::str(cluster)),
                    ("n".into(), Json::uint(ns[next])),
                    ("algorithm".into(), Json::str(algorithm.to_string())),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::uint(ms)));
                }
                self.send_line(&Json::Obj(fields).to_string())?;
                in_flight.push_back(next as u64);
                next += 1;
            }
            let v = self.recv_reply()?;
            let want = in_flight.pop_front().expect("a request is in flight");
            if v.get("id").and_then(Json::as_u64) != Some(want) {
                return Err(ProtoError::new(
                    "internal",
                    format!("pipelined reply out of order (expected id {want})"),
                ));
            }
            replies.push(lift_ok(v).and_then(|v| parse_partition_reply(&v)));
        }
        Ok(replies)
    }

    /// Partitions many sizes over one cluster in a single round-trip via
    /// the `partition_batch` verb. Element failures (shed, deadline) come
    /// back in-place; only envelope failures (unknown cluster, bad
    /// request) abort the call.
    pub fn partition_batch(
        &mut self,
        cluster: &str,
        ns: &[u64],
        algorithm: AlgorithmId,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Result<PartitionReply, ProtoError>>, ProtoError> {
        let mut fields = vec![
            ("verb".into(), Json::str("partition_batch")),
            ("cluster".into(), Json::str(cluster)),
            ("ns".into(), Json::Arr(ns.iter().map(|&n| Json::uint(n)).collect())),
            ("algorithm".into(), Json::str(algorithm.to_string())),
        ];
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms".into(), Json::uint(ms)));
        }
        let v = self.request_ok(&Json::Obj(fields).to_string())?;
        let fingerprint =
            v.get("fingerprint").and_then(Json::as_str).unwrap_or_default().to_owned();
        let results = v
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| ProtoError::new("internal", "missing results"))?;
        if results.len() != ns.len() {
            return Err(ProtoError::new(
                "internal",
                format!("batch answered {} of {} sizes", results.len(), ns.len()),
            ));
        }
        Ok(results
            .iter()
            .map(|elem| {
                if elem.get("ok").and_then(Json::as_bool) == Some(true) {
                    let mut reply = parse_partition_body(elem)?;
                    reply.fingerprint = fingerprint.clone();
                    Ok(reply)
                } else {
                    Err(lift_err(elem))
                }
            })
            .collect())
    }

    /// Reports an observed execution: `x` elements processed in
    /// `elapsed_us` microseconds on one machine of a registered cluster.
    /// The server's refiner decides whether the observation re-fits the
    /// model (bumping the cluster epoch) or is rejected.
    pub fn report(
        &mut self,
        cluster: &str,
        machine: u64,
        x: f64,
        elapsed_us: f64,
    ) -> Result<ReportReply, ProtoError> {
        let req = Json::Obj(vec![
            ("verb".into(), Json::str("report")),
            ("cluster".into(), Json::str(cluster)),
            ("machine".into(), Json::uint(machine)),
            ("x".into(), Json::num(x)),
            ("elapsed_us".into(), Json::num(elapsed_us)),
        ]);
        let v = self.request_ok(&req.to_string())?;
        parse_report_reply(&v)
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> Result<Json, ProtoError> {
        let v = self.request_ok(r#"{"verb":"stats"}"#)?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| ProtoError::new("internal", "missing stats"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        self.request_ok(r#"{"verb":"ping"}"#).map(|_| ())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        self.request_ok(r#"{"verb":"shutdown"}"#).map(|_| ())
    }
}

/// Lifts an error response object into a [`ProtoError`] with a stable
/// `&'static` code.
fn lift_err(v: &Json) -> ProtoError {
    let code: &'static str = match v.get("error").and_then(Json::as_str) {
        Some("overloaded") => "overloaded",
        Some("deadline") => "deadline",
        Some("not_found") => "not_found",
        Some("invalid_model") => "invalid_model",
        Some("solve_failed") => "solve_failed",
        Some("shutting_down") => "shutting_down",
        Some("bad_request") => "bad_request",
        Some("bad_json") => "bad_json",
        Some("unknown_verb") => "unknown_verb",
        Some("frame_too_large") => "frame_too_large",
        Some("shard_unavailable") => SHARD_UNAVAILABLE,
        _ => "internal",
    };
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .unwrap_or("unspecified server error")
        .to_owned();
    ProtoError::new(code, message)
}

/// Passes `ok` responses through; converts error responses.
fn lift_ok(v: Json) -> Result<Json, ProtoError> {
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(v)
    } else {
        Err(lift_err(&v))
    }
}

/// Parses the plan fields shared by `partition` replies and
/// `partition_batch` elements (which carry no fingerprint of their own).
fn parse_partition_body(v: &Json) -> Result<PartitionReply, ProtoError> {
    let counts = v
        .get("counts")
        .and_then(Json::as_array)
        .ok_or_else(|| ProtoError::new("internal", "missing counts"))?
        .iter()
        .map(|c| c.as_u64().ok_or_else(|| ProtoError::new("internal", "bad count")))
        .collect::<Result<Vec<u64>, _>>()?;
    Ok(PartitionReply {
        counts,
        makespan: v
            .get("makespan")
            .and_then(Json::as_f64)
            .ok_or_else(|| ProtoError::new("internal", "missing makespan"))?,
        steps: v.get("steps").and_then(Json::as_u64).unwrap_or(0),
        cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        fingerprint: String::new(),
    })
}

/// Parses a full `partition` reply (fingerprint included).
fn parse_partition_reply(v: &Json) -> Result<PartitionReply, ProtoError> {
    let mut reply = parse_partition_body(v)?;
    reply.fingerprint =
        v.get("fingerprint").and_then(Json::as_str).unwrap_or_default().to_owned();
    Ok(reply)
}

fn parse_report_reply(v: &Json) -> Result<ReportReply, ProtoError> {
    Ok(ReportReply {
        accepted: v
            .get("accepted")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtoError::new("internal", "missing accepted"))?,
        reason: v
            .get("reason")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned(),
        epoch: v
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError::new("internal", "missing epoch"))?,
        machine: v.get("machine").and_then(Json::as_str).unwrap_or_default().to_owned(),
        fingerprint: v
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned(),
    })
}

fn parse_register_reply(v: &Json) -> Result<RegisterReply, ProtoError> {
    Ok(RegisterReply {
        fingerprint: v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("internal", "missing fingerprint"))?
            .to_owned(),
        machines: v
            .get("machines")
            .and_then(Json::as_array)
            .map(|ms| {
                ms.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{spawn, ServerConfig};

    #[test]
    fn register_partition_stats_round_trip() {
        let handle = spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr, Duration::from_secs(10)).unwrap();
        client.ping().unwrap();
        let reg = client
            .register_inline(
                "c1",
                &[
                    ("A".into(), vec![(1e3, 200.0), (1e6, 180.0), (1e8, 0.0)]),
                    ("B".into(), vec![(1e3, 100.0), (1e6, 90.0), (1e8, 0.0)]),
                ],
            )
            .unwrap();
        assert_eq!(reg.machines, ["A", "B"]);
        let cold = client
            .partition("c1", 1_000_000, AlgorithmId::Combined, None)
            .unwrap();
        assert_eq!(cold.counts.iter().sum::<u64>(), 1_000_000);
        assert!(!cold.cached);
        assert_eq!(cold.fingerprint, reg.fingerprint);
        let warm = client
            .partition("c1", 1_000_000, AlgorithmId::Combined, None)
            .unwrap();
        assert!(warm.cached);
        assert_eq!(cold.counts, warm.counts);
        assert_eq!(cold.makespan.to_bits(), warm.makespan.to_bits());
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
        let err = client
            .partition("ghost", 10, AlgorithmId::Combined, None)
            .unwrap_err();
        assert_eq!(err.code, "not_found");
        handle.shutdown_and_join();
    }

    #[test]
    fn pipelined_and_batch_match_single_requests() {
        let handle = spawn(ServerConfig::default()).unwrap();
        let mut client =
            Client::connect_timeout(handle.addr, Some(Duration::from_secs(5)), Duration::from_secs(30))
                .unwrap();
        client
            .register_inline(
                "c1",
                &[
                    ("A".into(), vec![(1e3, 200.0), (1e6, 180.0), (1e8, 0.0)]),
                    ("B".into(), vec![(1e3, 100.0), (1e6, 90.0), (1e8, 0.0)]),
                ],
            )
            .unwrap();
        let ns: Vec<u64> = (1..=6).map(|i| i * 50_000).collect();
        let singles: Vec<PartitionReply> = ns
            .iter()
            .map(|&n| client.partition("c1", n, AlgorithmId::Combined, None).unwrap())
            .collect();
        let piped = client
            .partition_pipelined("c1", &ns, AlgorithmId::Combined, None, 4)
            .unwrap();
        let batched = client.partition_batch("c1", &ns, AlgorithmId::Combined, None).unwrap();
        for ((single, piped), batched) in singles.iter().zip(&piped).zip(&batched) {
            let piped = piped.as_ref().unwrap();
            let batched = batched.as_ref().unwrap();
            assert_eq!(single.counts, piped.counts);
            assert_eq!(single.counts, batched.counts);
            assert_eq!(single.makespan.to_bits(), piped.makespan.to_bits());
            assert_eq!(single.makespan.to_bits(), batched.makespan.to_bits());
            assert_eq!(single.fingerprint, batched.fingerprint);
            assert!(piped.cached && batched.cached, "second pass must be warm");
        }
        handle.shutdown_and_join();
    }

    #[test]
    fn report_round_trip_bumps_epoch_and_invalidates_cache() {
        let handle = spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr, Duration::from_secs(10)).unwrap();
        let reg = client
            .register_inline(
                "c1",
                &[
                    ("A".into(), vec![(1e3, 200.0), (1e6, 180.0), (1e8, 0.0)]),
                    ("B".into(), vec![(1e3, 100.0), (1e6, 90.0), (1e8, 0.0)]),
                ],
            )
            .unwrap();
        let cold = client.partition("c1", 1_000_000, AlgorithmId::Combined, None).unwrap();
        // Machine A now runs 40% slower than its model says. The refiner
        // wants corroboration, so the first report only goes pending.
        let x = cold.counts[0] as f64;
        let elapsed_us = x / (180.0 * 0.6) * 1e6;
        let first = client.report("c1", 0, x, elapsed_us).unwrap();
        assert!(!first.accepted);
        assert_eq!(first.reason, "pending");
        assert_eq!(first.epoch, 0);
        assert_eq!(first.fingerprint, reg.fingerprint);
        let second = client.report("c1", 0, x, elapsed_us).unwrap();
        assert!(second.accepted);
        assert_eq!(second.reason, "refined");
        assert_eq!(second.epoch, 1);
        assert_eq!(second.machine, "A");
        assert_ne!(second.fingerprint, reg.fingerprint);
        // The refit invalidated the plan cache: same n solves fresh, on the
        // refined model, so the split shifts away from the slowed machine.
        let warm = client.partition("c1", 1_000_000, AlgorithmId::Combined, None).unwrap();
        assert!(!warm.cached);
        assert_eq!(warm.fingerprint, second.fingerprint);
        assert!(warm.counts[0] < cold.counts[0], "{:?} vs {:?}", warm.counts, cold.counts);
        let err = client.report("ghost", 0, 10.0, 10.0).unwrap_err();
        assert_eq!(err.code, "not_found");
        handle.shutdown_and_join();
    }

    #[test]
    fn dead_shard_surfaces_shard_unavailable() {
        // Bind-then-drop leaves a port with nothing listening: connect must
        // come back refused with the distinct shard_unavailable code, and
        // do so within a bounded number of backoff attempts.
        let vacant = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = Client::connect_with_backoff(
            vacant,
            Some(Duration::from_millis(200)),
            Duration::from_secs(1),
            3,
            Duration::from_millis(1),
            Duration::from_millis(4),
        )
        .unwrap_err();
        assert_eq!(err.code, SHARD_UNAVAILABLE, "{}", err.message);

        // A server that dies mid-conversation surfaces the same code on
        // the next read, and reconnect() to a live server recovers.
        let handle = spawn(ServerConfig::default()).unwrap();
        let addr = handle.addr;
        let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
        client.ping().unwrap();
        handle.shutdown_and_join();
        let err = client.ping().unwrap_err();
        assert!(
            err.code == SHARD_UNAVAILABLE || err.code == "shutting_down",
            "got {}: {}",
            err.code,
            err.message
        );
        // The old address is dead; reconnect reports shard_unavailable
        // rather than a generic io failure.
        let err = client
            .reconnect(2, Duration::from_millis(1), Duration::from_millis(2))
            .unwrap_err();
        assert_eq!(err.code, SHARD_UNAVAILABLE);

        // Against a replacement server on a fresh port, reconnect works.
        let handle2 = spawn(ServerConfig::default()).unwrap();
        let mut client2 = Client::connect(handle2.addr, Duration::from_secs(5)).unwrap();
        client2.ping().unwrap();
        client2.reconnect(3, Duration::from_millis(1), Duration::from_millis(4)).unwrap();
        assert_eq!(client2.addr(), handle2.addr);
        client2.ping().unwrap();
        handle2.shutdown_and_join();
    }

    #[test]
    fn shutdown_via_client_drains_server() {
        let handle = spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr, Duration::from_secs(5)).unwrap();
        client.shutdown().unwrap();
        assert!(handle.is_stopping());
        handle.shutdown_and_join();
    }
}
