//! The machine × application speed model.
//!
//! Combines a [`MachineSpec`] with an [`AppProfile`] into a concrete
//! [`SpeedFunction`] with the shape template
//!
//! ```text
//! s(x) = sustained · ramp(x) · cache_boost(x) · paging(x)
//! ```
//!
//! * `sustained` — the post-cache, pre-paging speed the paper quotes for
//!   its machines (e.g. 250 MFlops for an X5-class Xeon on the naive MM);
//! * `ramp(x) = x/(x+r)` — per-call overheads amortise with size, giving
//!   the increasing left edge of the unimodal shapes in paper Fig. 5;
//! * `cache_boost(x) = 1 + β/(1+(x/knee)^exp)` — extra speed while the
//!   working set is cache-resident: a long smooth decline for naive
//!   kernels (Fig. 1c), a small sharp step for blocked kernels
//!   (Fig. 1a/1b);
//! * `paging(x)` — collapse beyond the paging point `P`, with
//!   per-application sharpness (paper: different paging algorithms produce
//!   different degradation laws).
//!
//! Every factor is non-increasing except the ramp, whose `x/(x+r)` form
//! keeps `s(x)/x` strictly decreasing — so the model provably satisfies the
//! single-intersection requirement of the partitioning algorithms.

use fpm_core::speed::SpeedFunction;

use crate::machine::MachineSpec;
use crate::profile::AppProfile;
use crate::workload;

/// Application-specific speed function of one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpeed {
    name: String,
    app: AppProfile,
    sustained_mflops: f64,
    ramp_elements: f64,
    cache_knee: f64,
    cache_exp: f64,
    cache_boost: f64,
    page_at: f64,
    page_alpha: f64,
    page_width: f64,
    page_floor: f64,
    model_hi: f64,
}

impl MachineSpeed {
    /// Builds the speed model of `spec` running `app`.
    pub fn for_app(spec: &MachineSpec, app: AppProfile) -> Self {
        let peak = app.flops_per_cycle(spec.arch) * spec.cpu_mhz as f64;
        let cache = spec.cache_elements();
        // The paging point in *elements*: the measured per-application
        // matrix size when available, else the free-memory capacity.
        let page_at = match app {
            AppProfile::MatrixMult | AppProfile::MatrixMultAtlas | AppProfile::ArrayOpsF => spec
                .paging_mm
                .map(|n| workload::mm_elements(n as u64) as f64)
                .unwrap_or_else(|| spec.free_memory_elements()),
            AppProfile::LuFactorization => spec
                .paging_lu
                .map(|n| workload::lu_elements(n as u64) as f64)
                .unwrap_or_else(|| spec.free_memory_elements()),
        };
        let model_hi = spec.memory_plus_swap_elements().max(3.0 * page_at);
        Self {
            name: spec.name.clone(),
            app,
            sustained_mflops: peak,
            ramp_elements: (cache / 16.0).max(16.0),
            cache_knee: cache,
            cache_exp: app.cache_sensitivity(),
            cache_boost: app.cache_boost(),
            page_at,
            page_alpha: app.paging_sharpness(),
            page_width: page_at * app.paging_transition(),
            page_floor: app.paging_floor(),
            model_hi,
        }
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application this model describes.
    pub fn app(&self) -> AppProfile {
        self.app
    }

    /// Sustained (post-cache, pre-paging) speed in MFlops.
    pub fn sustained_mflops(&self) -> f64 {
        self.sustained_mflops
    }

    /// Supremum of the curve: the in-cache peak.
    pub fn peak_mflops(&self) -> f64 {
        self.sustained_mflops * (1.0 + self.cache_boost)
    }

    /// Problem size (elements) at which paging starts — the point *P* of
    /// paper Fig. 1.
    pub fn paging_point(&self) -> f64 {
        self.page_at
    }

    /// The interval `[a, b]` the model-building procedure of paper §3.1
    /// would use for this machine: `a` fits in cache, `b` exhausts memory
    /// plus swap.
    pub fn model_interval(&self) -> (f64, f64) {
        ((self.cache_knee / 4.0).max(64.0), self.model_hi)
    }

    fn cache_factor(&self, x: f64) -> f64 {
        1.0 + self.cache_boost / (1.0 + (x / self.cache_knee).powf(self.cache_exp))
    }

    fn page_factor(&self, x: f64) -> f64 {
        if x <= self.page_at {
            1.0
        } else {
            let collapse =
                1.0 / (1.0 + ((x - self.page_at) / self.page_width).powf(self.page_alpha) * 8.0);
            collapse.max(self.page_floor)
        }
    }
}

impl SpeedFunction for MachineSpeed {
    fn speed(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let ramp = x / (x + self.ramp_elements);
        self.sustained_mflops * ramp * self.cache_factor(x) * self.page_factor(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Arch;
    use fpm_core::speed::check_single_intersection;

    fn xeon() -> MachineSpec {
        MachineSpec::new("X5", "Linux 2.4.18-10smp", Arch::Xeon, 1977, 1_030_508, 512)
            .with_free_memory(415_904)
            .with_paging(6000, 8500)
    }

    fn sparc() -> MachineSpec {
        MachineSpec::new("X10", "SunOS 5.8", Arch::UltraSparc, 440, 524_288, 2048)
            .with_free_memory(409_600)
            .with_paging(4500, 5000)
    }

    #[test]
    fn all_machine_app_models_satisfy_shape_requirement() {
        for spec in [xeon(), sparc()] {
            for app in AppProfile::all() {
                let m = MachineSpeed::for_app(&spec, app);
                let (_a, b) = m.model_interval();
                assert!(
                    check_single_intersection(&m, 16.0, b, 600).is_ok(),
                    "{} / {}",
                    spec.name,
                    app.name()
                );
            }
        }
    }

    #[test]
    fn xeon_naive_mm_is_near_250_mflops_pre_paging() {
        // The paper: X5 multiplies two dense 4500×4500 matrices at 250
        // MFlops (no paging at that size).
        let m = MachineSpeed::for_app(&xeon(), AppProfile::MatrixMult);
        let x = crate::workload::mm_elements(4500) as f64;
        let s = m.speed(x);
        assert!(s > 140.0 && s < 260.0, "X5 MM at 4500: {s} MFlops");
    }

    #[test]
    fn sparc_mm_is_near_31_mflops() {
        let m = MachineSpeed::for_app(&sparc(), AppProfile::MatrixMult);
        let x = crate::workload::mm_elements(4000) as f64;
        let s = m.speed(x);
        assert!(s > 17.0 && s < 33.0, "X10 MM at 4000: {s} MFlops");
    }

    #[test]
    fn paging_collapses_speed() {
        let m = MachineSpeed::for_app(&xeon(), AppProfile::MatrixMult);
        let before = m.speed(m.paging_point() * 0.9);
        let after = m.speed(m.paging_point() * 2.0);
        assert!(after < before * 0.25, "paging must collapse speed: {before} → {after}");
    }

    #[test]
    fn paging_point_uses_measured_matrix_size() {
        let m = MachineSpeed::for_app(&xeon(), AppProfile::MatrixMult);
        assert_eq!(m.paging_point(), (3 * 6000u64 * 6000) as f64);
        let lu = MachineSpeed::for_app(&xeon(), AppProfile::LuFactorization);
        assert_eq!(lu.paging_point(), (8500u64 * 8500) as f64);
    }

    #[test]
    fn blocked_kernel_is_flatter_than_naive_before_paging() {
        let spec = xeon();
        let atlas = MachineSpeed::for_app(&spec, AppProfile::MatrixMultAtlas);
        let naive = MachineSpeed::for_app(&spec, AppProfile::MatrixMult);
        // Relative drop from 1e5 to 1e7 elements (both below paging).
        let drop = |m: &MachineSpeed| m.speed(1e7) / m.speed(1e5);
        assert!(
            drop(&atlas) > drop(&naive),
            "ATLAS {} vs naive {}",
            drop(&atlas),
            drop(&naive)
        );
        assert!(drop(&atlas) > 0.85, "blocked kernels stay near peak");
    }

    #[test]
    fn zero_size_has_zero_speed() {
        let m = MachineSpeed::for_app(&xeon(), AppProfile::MatrixMult);
        assert_eq!(m.speed(0.0), 0.0);
        assert_eq!(m.speed(-5.0), 0.0);
    }

    #[test]
    fn model_interval_brackets_paging_point() {
        for app in AppProfile::all() {
            let m = MachineSpeed::for_app(&sparc(), app);
            let (a, b) = m.model_interval();
            assert!(a < m.paging_point());
            assert!(b > m.paging_point(), "{}: b={b} page={}", app.name(), m.paging_point());
        }
    }
}
