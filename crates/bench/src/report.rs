//! Experiment reports: tabular results with CSV export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A tabular experiment result.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig22a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, paper comparison).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// CSV rendering (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Formats a float with the given precision, trimming `-0`.
pub fn fnum(v: f64, precision: usize) -> String {
    let s = format!("{v:.precision$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_owned()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "x,y".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn text_contains_everything() {
        let t = sample().to_text();
        assert!(t.contains("demo"));
        assert!(t.contains("x,y"));
        assert!(t.contains("hello"));
    }

    #[test]
    fn csv_quotes_separators() {
        let c = sample().to_csv();
        assert!(c.contains("\"x,y\""));
        assert!(c.starts_with("a,b\n"));
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("fpm_bench_test_reports");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.contains("x,y"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnum_trims_negative_zero() {
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(1.236, 2), "1.24");
    }
}
