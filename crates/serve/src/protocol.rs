//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request is a JSON
//! object with a `"verb"` field and an optional `"id"` (echoed verbatim in
//! the response so clients may pipeline). Responses carry `"ok": true`
//! plus verb-specific fields, or `"ok": false` with a stable machine
//! `"error"` code and a human `"message"`.
//!
//! # Verbs
//!
//! | verb | request fields | response fields |
//! |---|---|---|
//! | `register` | `cluster`, and either `models` (inline piece-wise knots; per machine `knots` = `(size, speed)` pairs **or** `cost_knots` = `(size, time)` pairs for machines modelled directly in the time domain) or `testbed` (`{name, app, seed}` simnet reference) | `fingerprint`, `machines` |
//! | `partition` | `cluster` *or* `fingerprint`, `n`, optional `algorithm` (default `combined`), optional `deadline_ms` | `counts`, `makespan`, `cached`, `algorithm`, `fingerprint` |
//! | `partition_batch` | `cluster` *or* `fingerprint`, `ns` (array of sizes, ≤ [`MAX_BATCH`]), optional `algorithm`, optional `deadline_ms` (covers the whole batch) | `algorithm`, `fingerprint`, `results` — one array element per `ns` entry, each either the single-verb payload (`ok`, `counts`, `makespan`, `steps`, `cached`) or an element-level error (`ok: false`, `error`, `message`) |
//! | `report` | `model` (alias `cluster`) *or* `fingerprint`, `machine` (model index), `x` (problem size processed), `elapsed_us` (measured wall time, µs) | `accepted`, `reason`, `epoch`, `machine`, `fingerprint` |
//! | `stats` | — | metrics snapshot plus per-cluster `clusters` (epoch and refinement counters) |
//! | `ping` | — | `pong: true` |
//! | `shutdown` | — | `draining: true`, then the server drains and exits |
//!
//! `report` feeds one observed execution time back into the registry's
//! online refiner: an accepted observation re-fits the machine's
//! piece-wise model, bumps the cluster's epoch and changes its
//! fingerprint, invalidating all cached plans (the cache key includes the
//! epoch). A rejected observation (`accepted: false` with a `reason` such
//! as `in_band`, `pending` or `outlier`) never moves the epoch.
//!
//! Requests may be **pipelined**: clients can write many lines without
//! waiting; the server answers strictly in request order per connection.
//!
//! # Error codes
//!
//! `bad_json`, `bad_request`, `unknown_verb`, `invalid_model`,
//! `not_found`, `overloaded`, `deadline`, `frame_too_large`,
//! `shutting_down`, `solve_failed`, `internal`.
//!
//! # Limits
//!
//! Inputs are untrusted: frames are capped at [`MAX_FRAME_BYTES`] by the
//! server's line reader, clusters at [`MAX_MACHINES`] machines ×
//! [`MAX_KNOTS`] knots, `n` at [`MAX_N`] (2⁵³ — beyond that JSON
//! numbers stop being exact) and batches at [`MAX_BATCH`] sizes per
//! request. Knot coordinates must be finite.

use crate::json::{Json, JsonRef};
use fpm_core::planner::AlgorithmId;

/// Maximum accepted request line, in bytes (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;
/// Maximum machines per registered cluster.
pub const MAX_MACHINES: usize = 4096;
/// Maximum knots per machine model.
pub const MAX_KNOTS: usize = 4096;
/// Maximum problem size: 2⁵³, the largest integer JSON carries exactly.
pub const MAX_N: u64 = 1 << 53;
/// Maximum `ns` entries in one `partition_batch` request.
pub const MAX_BATCH: usize = 1024;

/// A protocol-level failure with a stable machine-readable code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (see module docs).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Creates an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Parses a wire algorithm string through the planner registry
/// ([`AlgorithmId::parse`]): wire spellings *are* the canonical names
/// (plus registry aliases and `single@SIZE`). Unknown names come back as
/// `bad_request` with the full list of valid spellings in the message.
pub fn parse_algorithm(text: &str) -> Result<AlgorithmId, ProtoError> {
    AlgorithmId::parse(text).map_err(|e| ProtoError::new("bad_request", e.to_string()))
}

/// One machine of an inline cluster registration.
#[derive(Debug, Clone, PartialEq)]
pub struct WireModel {
    /// Machine name (diagnostics only).
    pub name: String,
    /// Knots of the piece-wise linear model: `(size, speed)` when
    /// [`cost`](Self::cost) is false, `(size, time)` when true.
    pub knots: Vec<(f64, f64)>,
    /// True when the knots came from the `cost_knots` wire field: the
    /// machine is described directly in the time domain (a
    /// [`fpm_core::cost::PiecewiseLinearCost`]) instead of by a speed
    /// function.
    pub cost: bool,
}

/// The cluster payload of a `register` request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterSpec {
    /// Inline piece-wise linear models, one per machine.
    Inline(Vec<WireModel>),
    /// A simnet testbed reference, built server-side from noise-free
    /// simulated measurements (deterministic given the seed).
    Testbed {
        /// `table1` or `table2`.
        name: String,
        /// Application profile: `mm`, `mm-atlas`, `arrayops`, `lu`.
        app: String,
        /// Measurement RNG seed.
        seed: u64,
    },
}

/// How a `partition` request names its cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterRef {
    /// By registration name.
    Name(String),
    /// By content fingerprint (survives re-registration under new names).
    Fingerprint(String),
}

/// Borrowed counterpart of [`ClusterRef`]: the server's event loop routes
/// requests without copying the cluster name out of the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterRefView<'a> {
    /// By registration name.
    Name(&'a str),
    /// By content fingerprint.
    Fingerprint(&'a str),
}

impl ClusterRefView<'_> {
    /// Converts into the owned form (cold paths only).
    pub fn to_owned_ref(&self) -> ClusterRef {
        match self {
            ClusterRefView::Name(s) => ClusterRef::Name((*s).to_owned()),
            ClusterRefView::Fingerprint(s) => ClusterRef::Fingerprint((*s).to_owned()),
        }
    }
}

/// Borrowed view of a `partition` request. Produced by
/// [`parse_partition_ref`] on the server's hot path, where a warm cache
/// hit must not allocate beyond the response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionView<'a> {
    /// Which cluster.
    pub target: ClusterRefView<'a>,
    /// Problem size.
    pub n: u64,
    /// Algorithm selection (registry-canonical).
    pub algorithm: AlgorithmId,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Borrowed view of a `partition_batch` request. The `ns` vector is the
/// only allocation — one per batch, not per element.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionBatchView<'a> {
    /// Which cluster (shared by every element).
    pub target: ClusterRefView<'a>,
    /// Problem sizes, one result element each, in order.
    pub ns: Vec<u64>,
    /// Algorithm selection (shared by every element).
    pub algorithm: AlgorithmId,
    /// Deadline covering the whole batch, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or replace) a named cluster.
    Register {
        /// Registry name.
        cluster: String,
        /// The models.
        spec: ClusterSpec,
    },
    /// Partition `n` elements over a registered cluster.
    Partition {
        /// Which cluster.
        target: ClusterRef,
        /// Problem size.
        n: u64,
        /// Algorithm selection (registry-canonical).
        algorithm: AlgorithmId,
        /// Per-request deadline override, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Partition many sizes over one registered cluster in a single
    /// round-trip, answering with an ordered `results` array.
    PartitionBatch {
        /// Which cluster (shared by every element).
        target: ClusterRef,
        /// Problem sizes, in reply order.
        ns: Vec<u64>,
        /// Algorithm selection (shared by every element).
        algorithm: AlgorithmId,
        /// Deadline covering the whole batch, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Feed one observed execution time into a cluster's online refiner.
    Report {
        /// Which cluster (the `model` field is an accepted alias for
        /// `cluster`).
        target: ClusterRef,
        /// Index of the machine within the cluster's model order.
        machine: usize,
        /// Problem size the machine processed.
        x: f64,
        /// Measured wall time for that size, in microseconds.
        elapsed_us: f64,
    },
    /// Metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful drain-and-exit.
    Shutdown,
}

/// A parsed request envelope: the optional client-chosen `id` plus the
/// request proper.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in the response (number or string).
    pub id: Option<Json>,
    /// The request.
    pub request: Request,
}

/// Parses one request line.
///
/// On error the caller should still answer: the returned tuple carries
/// whatever `id` could be salvaged so the error response can be correlated.
pub fn parse_request(line: &str) -> Result<Envelope, (Option<Json>, ProtoError)> {
    let value = Json::parse_ref(line)
        .map_err(|e| (None, ProtoError::new("bad_json", e.to_string())))?;
    let id = match parse_id_ref(&value) {
        Ok(id) => id.map(JsonRef::to_json),
        Err(e) => return Err((None, e)),
    };
    match request_from_value(&value) {
        Ok(request) => Ok(Envelope { id, request }),
        Err(e) => Err((id, e)),
    }
}

/// Extracts the optional `id` field from a parsed request value without
/// copying it: the event loop only materialises an owned [`Json`] when a
/// response must be deferred past the frame's lifetime.
pub fn parse_id_ref<'a>(value: &'a JsonRef<'_>) -> Result<Option<&'a JsonRef<'a>>, ProtoError> {
    match value.get("id") {
        None | Some(JsonRef::Null) => Ok(None),
        Some(v @ (JsonRef::Num(_) | JsonRef::Str(_))) => Ok(Some(v)),
        Some(_) => Err(ProtoError::new("bad_request", "id must be a number or string")),
    }
}

/// Builds the owned [`Request`] from an already-parsed value tree (the
/// `id` is handled separately via [`parse_id_ref`]). The server's event
/// loop short-circuits `partition` through [`parse_partition_ref`]
/// instead and only falls back here for cold verbs.
pub fn request_from_value(value: &JsonRef<'_>) -> Result<Request, ProtoError> {
    if !matches!(value, JsonRef::Obj(_)) {
        return Err(ProtoError::new("bad_request", "request must be a JSON object"));
    }
    let verb = value
        .get("verb")
        .and_then(JsonRef::as_str)
        .ok_or_else(|| ProtoError::new("bad_request", "missing string field: verb"))?;
    match verb {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "register" => parse_register(value),
        "partition" => parse_partition_ref(value).map(|v| Request::Partition {
            target: v.target.to_owned_ref(),
            n: v.n,
            algorithm: v.algorithm,
            deadline_ms: v.deadline_ms,
        }),
        "partition_batch" => parse_partition_batch_ref(value).map(|v| Request::PartitionBatch {
            target: v.target.to_owned_ref(),
            ns: v.ns,
            algorithm: v.algorithm,
            deadline_ms: v.deadline_ms,
        }),
        "report" => parse_report(value),
        other => Err(ProtoError::new("unknown_verb", format!("unknown verb: {other:?}"))),
    }
}

fn parse_register(value: &JsonRef<'_>) -> Result<Request, ProtoError> {
    let cluster = value
        .get("cluster")
        .and_then(JsonRef::as_str)
        .ok_or_else(|| ProtoError::new("bad_request", "missing string field: cluster"))?;
    if cluster.is_empty() || cluster.len() > 256 {
        return Err(ProtoError::new("bad_request", "cluster name must be 1..=256 bytes"));
    }
    let spec = match (value.get("models"), value.get("testbed")) {
        (Some(models), None) => ClusterSpec::Inline(parse_models(models)?),
        (None, Some(tb)) => parse_testbed(tb)?,
        (Some(_), Some(_)) => {
            return Err(ProtoError::new(
                "bad_request",
                "register takes models or testbed, not both",
            ))
        }
        (None, None) => {
            return Err(ProtoError::new("bad_request", "register needs models or testbed"))
        }
    };
    Ok(Request::Register { cluster: cluster.to_owned(), spec })
}

fn parse_models(models: &JsonRef<'_>) -> Result<Vec<WireModel>, ProtoError> {
    let items = models
        .as_array()
        .ok_or_else(|| ProtoError::new("bad_request", "models must be an array"))?;
    if items.is_empty() {
        return Err(ProtoError::new("bad_request", "models must not be empty"));
    }
    if items.len() > MAX_MACHINES {
        return Err(ProtoError::new("bad_request", "too many machines"));
    }
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let name = item
            .get("name")
            .and_then(JsonRef::as_str)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("m{i}"));
        if name.len() > 256 {
            return Err(ProtoError::new("bad_request", "machine name too long"));
        }
        let (knots_json, cost) = match (item.get("knots"), item.get("cost_knots")) {
            (Some(k), None) => (k, false),
            (None, Some(k)) => (k, true),
            (Some(_), Some(_)) => {
                return Err(ProtoError::new(
                    "bad_request",
                    "a model takes knots or cost_knots, not both",
                ))
            }
            (None, None) => {
                return Err(ProtoError::new(
                    "bad_request",
                    "each model needs a knots (or cost_knots) array",
                ))
            }
        };
        let knots_json = knots_json
            .as_array()
            .ok_or_else(|| ProtoError::new("bad_request", "each model needs a knots array"))?;
        if knots_json.len() < 2 {
            return Err(ProtoError::new("invalid_model", "each model needs ≥ 2 knots"));
        }
        if knots_json.len() > MAX_KNOTS {
            return Err(ProtoError::new("bad_request", "too many knots"));
        }
        let mut knots = Vec::with_capacity(knots_json.len());
        for k in knots_json {
            let pair = k.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ProtoError::new(
                    "bad_request",
                    if cost { "knot must be [size, time]" } else { "knot must be [size, speed]" },
                )
            })?;
            let (x, s) = (pair[0].as_f64(), pair[1].as_f64());
            let (Some(x), Some(s)) = (x, s) else {
                return Err(ProtoError::new("bad_request", "knot coordinates must be numbers"));
            };
            // The JSON parser only yields finite numbers, but belt and
            // braces: the model layer must never see NaN.
            if !(x.is_finite() && s.is_finite()) {
                return Err(ProtoError::new("invalid_model", "knot coordinates must be finite"));
            }
            knots.push((x, s));
        }
        out.push(WireModel { name, knots, cost });
    }
    Ok(out)
}

fn parse_testbed(tb: &JsonRef<'_>) -> Result<ClusterSpec, ProtoError> {
    let name = tb
        .get("name")
        .and_then(JsonRef::as_str)
        .ok_or_else(|| ProtoError::new("bad_request", "testbed needs a name"))?;
    let app = tb.get("app").and_then(JsonRef::as_str).unwrap_or("mm");
    let seed = match tb.get("seed") {
        None => 0xF93,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ProtoError::new("bad_request", "testbed seed must be a u64"))?,
    };
    Ok(ClusterSpec::Testbed { name: name.to_owned(), app: app.to_owned(), seed })
}

fn parse_report(value: &JsonRef<'_>) -> Result<Request, ProtoError> {
    // `model` is an alias for `cluster`: a report concerns one registered
    // model set.
    let target = parse_report_target_ref(value)?;
    let machine = value
        .get("machine")
        .and_then(JsonRef::as_u64)
        .ok_or_else(|| ProtoError::new("bad_request", "machine must be a non-negative integer"))?;
    if machine as usize >= MAX_MACHINES {
        return Err(ProtoError::new("bad_request", "machine index out of range"));
    }
    let x = value
        .get("x")
        .and_then(JsonRef::as_f64)
        .ok_or_else(|| ProtoError::new("bad_request", "x must be a number"))?;
    if !(x.is_finite() && x > 0.0) {
        return Err(ProtoError::new("bad_request", "x must be positive and finite"));
    }
    let elapsed_us = value
        .get("elapsed_us")
        .and_then(JsonRef::as_f64)
        .ok_or_else(|| ProtoError::new("bad_request", "elapsed_us must be a number"))?;
    if !(elapsed_us.is_finite() && elapsed_us > 0.0) {
        return Err(ProtoError::new("bad_request", "elapsed_us must be positive and finite"));
    }
    Ok(Request::Report {
        target: target.to_owned_ref(),
        machine: machine as usize,
        x,
        elapsed_us,
    })
}

/// Parses a `partition` request into a borrowed view: the target name
/// stays a slice into the frame, so warm cache hits never copy it.
pub fn parse_partition_ref<'a>(value: &'a JsonRef<'_>) -> Result<PartitionView<'a>, ProtoError> {
    let target = parse_target(value)?;
    let n = parse_n(value.get("n"))?;
    let algorithm = parse_algorithm_field(value)?;
    let deadline_ms = parse_deadline_field(value)?;
    Ok(PartitionView { target, n, algorithm, deadline_ms })
}

/// Parses a `partition_batch` request into a borrowed view.
pub fn parse_partition_batch_ref<'a>(
    value: &'a JsonRef<'_>,
) -> Result<PartitionBatchView<'a>, ProtoError> {
    let target = parse_target(value)?;
    let items = value
        .get("ns")
        .and_then(JsonRef::as_array)
        .ok_or_else(|| ProtoError::new("bad_request", "ns must be an array of sizes"))?;
    if items.is_empty() {
        return Err(ProtoError::new("bad_request", "ns must not be empty"));
    }
    if items.len() > MAX_BATCH {
        return Err(ProtoError::new(
            "bad_request",
            format!("batch exceeds {MAX_BATCH} sizes"),
        ));
    }
    let mut ns = Vec::with_capacity(items.len());
    for item in items {
        ns.push(parse_n(Some(item))?);
    }
    let algorithm = parse_algorithm_field(value)?;
    let deadline_ms = parse_deadline_field(value)?;
    Ok(PartitionBatchView { target, ns, algorithm, deadline_ms })
}

/// Extracts the cluster reference (`cluster` or `fingerprint`) from a
/// partition-shaped request without copying it. The router uses this to
/// derive the consistent-hash routing key before forwarding the raw frame.
pub fn parse_target_ref<'a>(value: &'a JsonRef<'_>) -> Result<ClusterRefView<'a>, ProtoError> {
    parse_target(value)
}

/// Extracts the cluster reference from a `report` request, honouring the
/// `model` alias exactly like the server's own parser (a router that
/// routed `model` differently from `cluster` would split replicas).
pub fn parse_report_target_ref<'a>(
    value: &'a JsonRef<'_>,
) -> Result<ClusterRefView<'a>, ProtoError> {
    match value.get("model").and_then(JsonRef::as_str) {
        Some(name) => {
            if value.get("cluster").is_some() || value.get("fingerprint").is_some() {
                return Err(ProtoError::new(
                    "bad_request",
                    "report takes model, cluster or fingerprint — pick one",
                ));
            }
            Ok(ClusterRefView::Name(name))
        }
        None => parse_target(value),
    }
}

fn parse_target<'a>(value: &'a JsonRef<'_>) -> Result<ClusterRefView<'a>, ProtoError> {
    match (
        value.get("cluster").and_then(JsonRef::as_str),
        value.get("fingerprint").and_then(JsonRef::as_str),
    ) {
        (Some(name), None) => Ok(ClusterRefView::Name(name)),
        (None, Some(fp)) => Ok(ClusterRefView::Fingerprint(fp)),
        (Some(_), Some(_)) => Err(ProtoError::new(
            "bad_request",
            "partition takes cluster or fingerprint, not both",
        )),
        (None, None) => Err(ProtoError::new(
            "bad_request",
            "partition needs a cluster name or fingerprint",
        )),
    }
}

fn parse_n(v: Option<&JsonRef<'_>>) -> Result<u64, ProtoError> {
    let n = v
        .and_then(JsonRef::as_u64)
        .ok_or_else(|| ProtoError::new("bad_request", "n must be a non-negative integer"))?;
    if n > MAX_N {
        return Err(ProtoError::new("bad_request", "n exceeds 2^53"));
    }
    Ok(n)
}

fn parse_algorithm_field(value: &JsonRef<'_>) -> Result<AlgorithmId, ProtoError> {
    match value.get("algorithm") {
        None => Ok(AlgorithmId::Combined),
        Some(a) => {
            let text = a
                .as_str()
                .ok_or_else(|| ProtoError::new("bad_request", "algorithm must be a string"))?;
            parse_algorithm(text)
        }
    }
}

fn parse_deadline_field(value: &JsonRef<'_>) -> Result<Option<u64>, ProtoError> {
    match value.get("deadline_ms") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .filter(|&ms| ms > 0 && ms <= 3_600_000)
            .map(Some)
            .ok_or_else(|| ProtoError::new("bad_request", "deadline_ms must be in 1..=3600000")),
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: Option<&Json>, verb: &str, fields: Vec<(String, Json)>) -> String {
    let mut obj = Vec::with_capacity(fields.len() + 3);
    if let Some(id) = id {
        obj.push(("id".to_owned(), id.clone()));
    }
    obj.push(("ok".to_owned(), Json::Bool(true)));
    obj.push(("verb".to_owned(), Json::str(verb)));
    obj.extend(fields);
    Json::Obj(obj).to_string()
}

/// Renders an error response line (no trailing newline).
pub fn err_response(id: Option<&Json>, error: &ProtoError) -> String {
    let mut obj = Vec::with_capacity(4);
    if let Some(id) = id {
        obj.push(("id".to_owned(), id.clone()));
    }
    obj.push(("ok".to_owned(), Json::Bool(false)));
    obj.push(("error".to_owned(), Json::str(error.code)));
    obj.push(("message".to_owned(), Json::str(error.message.clone())));
    Json::Obj(obj).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_stats_shutdown() {
        for (line, want) in [
            (r#"{"verb":"ping"}"#, Request::Ping),
            (r#"{"verb":"stats"}"#, Request::Stats),
            (r#"{"verb":"shutdown"}"#, Request::Shutdown),
        ] {
            let env = parse_request(line).unwrap();
            assert_eq!(env.request, want);
            assert_eq!(env.id, None);
        }
    }

    #[test]
    fn echoes_ids() {
        let env = parse_request(r#"{"id":7,"verb":"ping"}"#).unwrap();
        assert_eq!(env.id, Some(Json::Num(7.0)));
        let env = parse_request(r#"{"id":"abc","verb":"ping"}"#).unwrap();
        assert_eq!(env.id, Some(Json::Str("abc".into())));
        // Error paths keep the id for correlation.
        let (id, e) = parse_request(r#"{"id":9,"verb":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(Json::Num(9.0)));
        assert_eq!(e.code, "unknown_verb");
    }

    #[test]
    fn parses_inline_register() {
        let line = r#"{"verb":"register","cluster":"c1","models":[
            {"name":"X1","knots":[[1000,200],[1e6,180],[1e8,0]]},
            {"knots":[[1000,100],[1e6,90]]}]}"#;
        let env = parse_request(&line.replace('\n', " ")).unwrap();
        let Request::Register { cluster, spec: ClusterSpec::Inline(models) } = env.request
        else {
            panic!("wrong variant");
        };
        assert_eq!(cluster, "c1");
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].name, "X1");
        assert_eq!(models[0].knots[1], (1e6, 180.0));
        assert!(!models[0].cost);
        assert_eq!(models[1].name, "m1");
    }

    #[test]
    fn parses_cost_knot_register() {
        let line = r#"{"verb":"register","cluster":"sorted","models":[
            {"name":"S1","cost_knots":[[1000,0.5],[1e6,900]]},
            {"knots":[[1000,100],[1e6,90]]}]}"#;
        let env = parse_request(&line.replace('\n', " ")).unwrap();
        let Request::Register { spec: ClusterSpec::Inline(models), .. } = env.request else {
            panic!("wrong variant");
        };
        assert!(models[0].cost, "cost_knots marks the machine as a cost model");
        assert_eq!(models[0].knots, [(1000.0, 0.5), (1e6, 900.0)]);
        assert!(!models[1].cost, "speed machines mix freely in the same cluster");
        // A machine cannot carry both spellings, or neither.
        let (_, e) = parse_request(
            r#"{"verb":"register","cluster":"c","models":[{"knots":[[1,1],[2,2]],"cost_knots":[[1,1],[2,2]]}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("not both"), "{}", e.message);
        let (_, e) = parse_request(
            r#"{"verb":"register","cluster":"c","models":[{"name":"x"}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn parses_testbed_register() {
        let env = parse_request(
            r#"{"verb":"register","cluster":"t2","testbed":{"name":"table2","app":"lu","seed":9}}"#,
        )
        .unwrap();
        let Request::Register { cluster, spec } = env.request else { panic!() };
        assert_eq!(cluster, "t2");
        assert_eq!(
            spec,
            ClusterSpec::Testbed { name: "table2".into(), app: "lu".into(), seed: 9 }
        );
    }

    #[test]
    fn parses_partition_with_defaults() {
        let env =
            parse_request(r#"{"verb":"partition","cluster":"c1","n":1000000}"#).unwrap();
        assert_eq!(
            env.request,
            Request::Partition {
                target: ClusterRef::Name("c1".into()),
                n: 1_000_000,
                algorithm: AlgorithmId::Combined,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn parses_partition_by_fingerprint_and_algorithm() {
        let env = parse_request(
            r#"{"verb":"partition","fingerprint":"ab12","n":5,"algorithm":"single@7e5","deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Partition { target, algorithm, deadline_ms, .. } = env.request else {
            panic!()
        };
        assert_eq!(target, ClusterRef::Fingerprint("ab12".into()));
        assert_eq!(algorithm, AlgorithmId::SingleAt(7e5));
        assert_eq!(deadline_ms, Some(250));
    }

    #[test]
    fn parses_partition_batch() {
        let env = parse_request(
            r#"{"verb":"partition_batch","cluster":"c1","ns":[10,20,30],"algorithm":"basic"}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::PartitionBatch {
                target: ClusterRef::Name("c1".into()),
                ns: vec![10, 20, 30],
                algorithm: AlgorithmId::Basic,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn rejects_malformed_batches() {
        let cases: &[(&str, &str)] = &[
            (r#"{"verb":"partition_batch","cluster":"c"}"#, "bad_request"),
            (r#"{"verb":"partition_batch","cluster":"c","ns":7}"#, "bad_request"),
            (r#"{"verb":"partition_batch","cluster":"c","ns":[]}"#, "bad_request"),
            (r#"{"verb":"partition_batch","cluster":"c","ns":[1,-2]}"#, "bad_request"),
            (r#"{"verb":"partition_batch","cluster":"c","ns":[1,2.5]}"#, "bad_request"),
        ];
        for (line, code) in cases {
            let (_, e) = parse_request(line).unwrap_err();
            assert_eq!(&e.code, code, "{line}");
        }
        // One over the batch cap.
        let ns: Vec<String> = (0..=MAX_BATCH).map(|i| i.to_string()).collect();
        let line =
            format!(r#"{{"verb":"partition_batch","cluster":"c","ns":[{}]}}"#, ns.join(","));
        let (_, e) = parse_request(&line).unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert!(e.message.contains("batch"), "{}", e.message);
    }

    #[test]
    fn borrowed_views_match_owned_requests() {
        let line = r#"{"id":3,"verb":"partition","cluster":"west","n":4096,"deadline_ms":100}"#;
        let value = Json::parse_ref(line).unwrap();
        let id = parse_id_ref(&value).unwrap().map(JsonRef::to_json);
        assert_eq!(id, Some(Json::Num(3.0)));
        let view = parse_partition_ref(&value).unwrap();
        assert_eq!(view.target, ClusterRefView::Name("west"));
        assert_eq!(view.n, 4096);
        assert_eq!(view.deadline_ms, Some(100));
        let env = parse_request(line).unwrap();
        let Request::Partition { target, n, algorithm, deadline_ms } = env.request else {
            panic!()
        };
        assert_eq!(target, view.target.to_owned_ref());
        assert_eq!((n, algorithm, deadline_ms), (view.n, view.algorithm, view.deadline_ms));
    }

    #[test]
    fn parses_report_with_model_alias() {
        let env = parse_request(
            r#"{"verb":"report","model":"c1","machine":2,"x":50000,"elapsed_us":260.5}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::Report {
                target: ClusterRef::Name("c1".into()),
                machine: 2,
                x: 50_000.0,
                elapsed_us: 260.5,
            }
        );
        // `cluster` and `fingerprint` spellings work too.
        let env = parse_request(
            r#"{"verb":"report","cluster":"c1","machine":0,"x":1,"elapsed_us":1}"#,
        )
        .unwrap();
        assert!(matches!(env.request, Request::Report { target: ClusterRef::Name(_), .. }));
        let env = parse_request(
            r#"{"verb":"report","fingerprint":"ab12","machine":0,"x":1,"elapsed_us":1}"#,
        )
        .unwrap();
        assert!(matches!(env.request, Request::Report { target: ClusterRef::Fingerprint(_), .. }));
    }

    #[test]
    fn rejects_malformed_reports_with_stable_codes() {
        let cases: &[(&str, &str)] = &[
            // No target at all, or two competing spellings.
            (r#"{"verb":"report","machine":0,"x":1,"elapsed_us":1}"#, "bad_request"),
            (
                r#"{"verb":"report","model":"a","cluster":"b","machine":0,"x":1,"elapsed_us":1}"#,
                "bad_request",
            ),
            // Malformed machine index.
            (r#"{"verb":"report","model":"c","x":1,"elapsed_us":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":-1,"x":1,"elapsed_us":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":1.5,"x":1,"elapsed_us":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":9999,"x":1,"elapsed_us":1}"#, "bad_request"),
            // Malformed x.
            (r#"{"verb":"report","model":"c","machine":0,"elapsed_us":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":0,"x":0,"elapsed_us":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":0,"x":-5,"elapsed_us":1}"#, "bad_request"),
            // Malformed elapsed: missing, zero, negative, non-numeric.
            (r#"{"verb":"report","model":"c","machine":0,"x":1}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":0}"#, "bad_request"),
            (r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":-3}"#, "bad_request"),
            (
                r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":"fast"}"#,
                "bad_request",
            ),
            // NaN / Infinity are not JSON: the parser rejects the frame.
            (r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":NaN}"#, "bad_json"),
            (
                r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":Infinity}"#,
                "bad_json",
            ),
            // Numeric overflow to ∞ is rejected by the number grammar too.
            (r#"{"verb":"report","model":"c","machine":0,"x":1,"elapsed_us":1e999}"#, "bad_json"),
        ];
        for (line, code) in cases {
            let (_, e) = parse_request(line).unwrap_err();
            assert_eq!(&e.code, code, "{line}");
        }
    }

    #[test]
    fn rejects_malformed_requests_with_stable_codes() {
        let cases: &[(&str, &str)] = &[
            ("not json at all", "bad_json"),
            ("[1,2,3]", "bad_request"),
            (r#"{"verb":"warp"}"#, "unknown_verb"),
            (r#"{"verb":"partition","n":5}"#, "bad_request"),
            (r#"{"verb":"partition","cluster":"c","n":-1}"#, "bad_request"),
            (r#"{"verb":"partition","cluster":"c","n":1.5}"#, "bad_request"),
            (r#"{"verb":"partition","cluster":"c","n":1e300}"#, "bad_request"),
            (r#"{"verb":"partition","cluster":"c","n":1,"algorithm":"magic"}"#, "bad_request"),
            (r#"{"verb":"register","cluster":"c"}"#, "bad_request"),
            (r#"{"verb":"register","cluster":"c","models":[]}"#, "bad_request"),
            (
                r#"{"verb":"register","cluster":"c","models":[{"knots":[[1,1]]}]}"#,
                "invalid_model",
            ),
            (r#"{"verb":"register","cluster":"c","models":[{"knots":[[1],[2]]}]}"#, "bad_request"),
        ];
        for (line, code) in cases {
            let (_, e) = parse_request(line).unwrap_err();
            assert_eq!(&e.code, code, "{line}");
        }
    }

    #[test]
    fn n_minus_one_is_bad_json_because_grammar() {
        // Negative n parses as JSON but fails the u64 check; "-1" is valid
        // JSON so this must come back bad_request, not bad_json.
        let (_, e) =
            parse_request(r#"{"verb":"partition","cluster":"c","n":-1.0}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn algorithm_round_trips() {
        // Every registry entry's example spelling round-trips over the
        // wire, as does the parameterized baseline at an awkward size.
        for info in fpm_core::planner::registry() {
            let a = parse_algorithm(info.example).unwrap();
            assert_eq!(a.to_string(), info.example);
        }
        let a = parse_algorithm("single@123456.5").unwrap();
        assert_eq!(a.to_string(), "single@123456.5");
        assert_ne!(
            AlgorithmId::SingleAt(1.0).key_tag(),
            AlgorithmId::SingleAt(2.0).key_tag()
        );
        assert_ne!(AlgorithmId::Combined.key_tag(), AlgorithmId::Basic.key_tag());
    }

    #[test]
    fn unknown_algorithm_error_lists_valid_names() {
        let e = parse_algorithm("magic").unwrap_err();
        assert_eq!(e.code, "bad_request");
        for info in fpm_core::planner::registry() {
            assert!(e.message.contains(info.name), "{}: {}", info.name, e.message);
        }
    }

    #[test]
    fn responses_render_ids_and_codes() {
        let id = Json::Num(3.0);
        let ok = ok_response(Some(&id), "ping", vec![("pong".into(), Json::Bool(true))]);
        assert_eq!(ok, r#"{"id":3,"ok":true,"verb":"ping","pong":true}"#);
        let err = err_response(None, &ProtoError::new("overloaded", "queue full"));
        assert_eq!(err, r#"{"ok":false,"error":"overloaded","message":"queue full"}"#);
    }
}
