//! # fpm-simnet — simulated heterogeneous network of computers
//!
//! The paper evaluates its partitioning algorithms on two physical testbeds:
//! a 4-machine network (Table 1) and a 12-machine Solaris/Linux network
//! (Table 2). This crate is the substitute substrate: it models each
//! machine's application-specific speed function from its published
//! specification — CPU clock, architecture efficiency, cache size, main and
//! free memory, and the *paging points* the paper measured — plus the
//! stochastic workload-fluctuation bands of paper Fig. 2.
//!
//! Everything the partitioning results depend on is a property of the speed
//! functions' *shapes* (continuity, the single-intersection requirement,
//! the cache and paging knees, the fluctuation widths), all of which the
//! model reproduces; absolute MFlops are calibrated to the handful of
//! values the paper quotes but are otherwise synthetic.
//!
//! ## Modules
//!
//! * [`machine`] — machine specifications;
//! * [`testbeds`] — the Table 1 and Table 2 inventories;
//! * [`profile`] — application profiles (ArrayOpsF, MatrixMultATLAS, naive
//!   MatrixMult, LU factorisation) controlling the curve shape;
//! * [`speed_model`] — machine × profile ⇒ [`fpm_core::SpeedFunction`];
//! * [`scenarios`] — seeded random testbeds plus the sorting scenario's
//!   measured `x·log x` cost models;
//! * [`fluctuation`] — stochastic workload bands and noisy measurement
//!   oracles;
//! * [`workload`] — problem-size conversions (matrix dimension ↔ element
//!   count) shared by the kernels and experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fluctuation;
pub mod machine;
pub mod profile;
pub mod scenarios;
pub mod speed_model;
pub mod testbeds;
pub mod workload;

pub use fluctuation::{FluctuatingMeasurer, Integration};
pub use machine::{Arch, MachineSpec};
pub use profile::AppProfile;
pub use scenarios::{random_cluster, random_testbed, ScenarioConfig};
pub use speed_model::MachineSpeed;
