//! A persistent worker pool shared by the execution engines.
//!
//! The seed code spawned a fresh thread scope for every host run and
//! built cluster models strictly sequentially. This module provides the
//! two primitives that replace those patterns:
//!
//! * [`WorkerPool`] — long-lived worker threads fed over a channel,
//!   created once per process ([`WorkerPool::global`]) and reused across
//!   calls, so repeated executor invocations pay no thread start-up cost;
//! * [`scoped_map`] — a bounded parallel map over *borrowed* data for
//!   sweeps whose inputs cannot be moved into `'static` jobs, sized by the
//!   pool's worker count.
//!
//! Results always come back in input order and panics in jobs are
//! propagated to the caller, so swapping a sequential loop for the pool
//! changes wall time only.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Sender<Job>,
    workers: usize,
}

impl WorkerPool {
    /// Starts a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            thread::spawn(move || loop {
                // Job panics are caught in run(), so a poisoned lock can
                // only mean the process is already tearing down.
                let job = match receiver.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => return,
                };
                match job {
                    Ok(job) => job(),
                    Err(_) => return, // pool dropped: exit quietly
                }
            });
        }
        Self { sender, workers }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available hardware thread.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = thread::available_parallelism().map_or(4, |n| n.get());
            WorkerPool::new(workers)
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender.send(Box::new(job)).expect("worker pool threads are persistent");
    }

    /// Runs every task on the pool and returns their results in input
    /// order. If a task panics, the panic is re-raised here.
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (tx, rx) = channel::<(usize, thread::Result<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                // The receiver disappears only if a sibling task already
                // panicked and the caller unwound; nothing left to report.
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("every submitted task reports exactly once");
            match result {
                Ok(value) => out[i] = Some(value),
                Err(panic) => resume_unwind(panic),
            }
        }
        out.into_iter().map(|o| o.expect("all indices filled")).collect()
    }
}

/// Parallel map over borrowed data: `f(i, &items[i])` for every item, with
/// results in input order. Uses `min(pool workers, items)` scoped threads
/// striding over the items, so it is safe for inputs that cannot be moved
/// into `'static` jobs; panics in `f` propagate to the caller.
pub fn scoped_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = WorkerPool::global().workers().min(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("scoped map worker panicked") {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|o| o.expect("all indices filled")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_preserves_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * i) as Box<_>).collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_handles_empty() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.run(tasks).is_empty());
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = WorkerPool::new(2);
        for round in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..8).map(|i| Box::new(move || round + i) as Box<_>).collect();
            assert_eq!(pool.run(tasks)[7], round + 7);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_propagates_panics() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| ()),
            Box::new(|| panic!("boom")),
        ];
        pool.run(tasks);
    }

    #[test]
    fn global_pool_is_shared() {
        assert!(std::ptr::eq(WorkerPool::global(), WorkerPool::global()));
        assert!(WorkerPool::global().workers() >= 1);
    }

    #[test]
    fn scoped_map_matches_sequential() {
        let items: Vec<u64> = (0..100).collect();
        let out = scoped_map(&items, |i, &x| x * 2 + i as u64);
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn scoped_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items = vec![(); 37];
        let _ = scoped_map(&items, |_, _| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn panic_mid_batch_propagates_payload_and_pool_recovers() {
        // A panic in the *middle* of a batch (other jobs before and after
        // it) must reach the caller with its payload intact, and the pool
        // must stay fully usable afterwards.
        let pool = WorkerPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..20u32)
            .map(|i| {
                Box::new(move || {
                    if i == 9 {
                        panic!("mid-batch fault #{i}");
                    }
                    i + 1
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(tasks)))
            .expect_err("panic must propagate");
        let payload = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(payload.contains("mid-batch fault #9"), "payload lost: {payload:?}");

        // No poisoned workers: subsequent batches behave normally.
        for _ in 0..2 {
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
                (0..20u32).map(|i| Box::new(move || i + 1) as Box<_>).collect();
            assert_eq!(pool.run(tasks), (1..=20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_keeps_order_with_adversarial_durations() {
        // Completion order is roughly the reverse of submission order
        // (early tasks sleep longest); results must still be in input
        // order.
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(((20 - i) % 5) as u64 * 4));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(pool.run(tasks), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_map_keeps_order_with_adversarial_durations() {
        let items: Vec<usize> = (0..24).collect();
        let out = scoped_map(&items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_millis(((24 - i) % 6) as u64 * 2));
            x * 10
        });
        assert_eq!(out, (0..24).map(|x| x * 10).collect::<Vec<_>>());
    }
}
