//! Concrete cost models: measured `(size, time)` knots and the
//! workload transforms for sort- and query-shaped loads.

use super::function::CostFunction;
use crate::error::{Error, Result};

/// A cost function interpolated linearly between measured
/// `(size, time)` knots — the time-domain counterpart of
/// [`crate::speed::PiecewiseLinearSpeed`].
///
/// Below the first knot the model interpolates linearly from the origin
/// `(0, 0)` (equivalent to the speed model's "clamp to the first
/// measured speed"); beyond the last knot it continues the final
/// segment's slope, and [`max_size`](CostFunction::max_size) is the
/// last knot's abscissa so the solvers never assign past the measured
/// domain.
///
/// # Shape validity
///
/// The trait invariant — `time` strictly increasing — holds for a
/// piece-wise linear function iff it holds at the knots, which
/// [`PiecewiseLinearCost::new`] enforces. Note this admits *any*
/// curvature (convex sort costs, concave cache-warming costs, straight
/// linear costs alike); the speed model's stricter `s(x)/x` decrease is
/// the special case of a time model that also passes through shrinking
/// origin-line slopes.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinearCost {
    /// Knots sorted by strictly increasing abscissa and time.
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinearCost {
    /// Builds a piece-wise linear cost model from `(size, time)` knots.
    ///
    /// Requirements (checked, violations return
    /// [`Error::InvalidSpeedFunction`] with processor index
    /// `usize::MAX`, matching the speed-model constructor):
    ///
    /// * at least two knots;
    /// * abscissas strictly increasing, positive, finite;
    /// * times strictly increasing, positive, finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        const P: usize = usize::MAX;
        if points.len() < 2 {
            return Err(Error::InvalidSpeedFunction {
                processor: P,
                reason: "piece-wise linear cost model needs at least two knots",
            });
        }
        for &(x, t) in &points {
            if !(x.is_finite() && x > 0.0) {
                return Err(Error::InvalidSpeedFunction {
                    processor: P,
                    reason: "cost knot abscissas must be positive and finite",
                });
            }
            if !(t.is_finite() && t > 0.0) {
                return Err(Error::InvalidSpeedFunction {
                    processor: P,
                    reason: "cost knot times must be positive and finite",
                });
            }
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(Error::InvalidSpeedFunction {
                    processor: P,
                    reason: "cost knot abscissas must be strictly increasing",
                });
            }
            if w[1].1 <= w[0].1 {
                return Err(Error::InvalidSpeedFunction {
                    processor: P,
                    reason: "cost knot times must be strictly increasing (monotone time invariant)",
                });
            }
        }
        Ok(Self { points })
    }

    /// The interpolation knots, sorted by size.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of measured points the model is built from.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the model has no knots (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl CostFunction for PiecewiseLinearCost {
    fn time(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let pts = &self.points;
        let (x0, t0) = pts[0];
        let (x_last, t_last) = pts[pts.len() - 1];
        if x <= x0 {
            // Linear from the origin through the first knot.
            return t0 * (x / x0);
        }
        if x >= x_last {
            // Continue the final segment's slope.
            let (xa, ta) = pts[pts.len() - 2];
            let m = (t_last - ta) / (x_last - xa);
            return t_last + m * (x - x_last);
        }
        let idx = pts.partition_point(|&(xk, _)| xk < x);
        let (xa, ta) = pts[idx - 1];
        let (xb, tb) = pts[idx];
        let u = (x - xa) / (xb - xa);
        ta + u * (tb - ta)
    }

    fn max_size(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Closed-form intersection with the origin line `y = slope·x` in
    /// the throughput plane, i.e. the root of `time(x) = 1/slope`.
    ///
    /// `time` is strictly increasing (validated at construction), so a
    /// binary search over the knots finds the containing segment and a
    /// linear inversion finishes. Mirrors the clamping semantics of
    /// [`crate::geometry::intersect_origin_line`]: `max_size` when even
    /// the full modelled domain finishes before `1/slope`.
    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        if !(slope.is_finite() && slope > 0.0) {
            return None;
        }
        let target = 1.0 / slope;
        let pts = &self.points;
        let (x0, t0) = pts[0];
        let (x_last, t_last) = pts[pts.len() - 1];
        if target <= t0 {
            // Origin segment: time(x) = t0·x/x0.
            return Some(x0 * (target / t0));
        }
        if target >= t_last {
            return Some(x_last);
        }
        let k = pts.partition_point(|&(_, tk)| tk < target);
        debug_assert!(k >= 1 && k < pts.len());
        let (xa, ta) = pts[k - 1];
        let (xb, tb) = pts[k];
        let u = (target - ta) / (tb - ta);
        Some(xa + u * (xb - xa))
    }
}

/// Comparison-sort transform: `time(x) = base_time(x) · log₂(max(x, 2))`.
///
/// Models a machine whose elementwise throughput is described by an
/// existing model while the workload performs an `x·log x` comparison
/// sort over its assigned elements (Cérin/Dubacq/Roch-style
/// heterogeneous sorting). The factor is clamped at `log₂ 2 = 1` below
/// two elements so the transform is continuous and the base cost is a
/// lower bound.
///
/// Borrows its base model, matching how the planner wraps a
/// caller-owned cluster slice for the duration of one solve.
#[derive(Debug)]
pub struct SortCost<'a, F: ?Sized> {
    inner: &'a F,
}

impl<'a, F: CostFunction + ?Sized> SortCost<'a, F> {
    /// Wraps `inner` with the `x·log₂ x` comparison factor.
    pub fn new(inner: &'a F) -> Self {
        Self { inner }
    }

    /// The elementwise base model.
    pub fn inner(&self) -> &F {
        self.inner
    }
}

impl<F: CostFunction + ?Sized> CostFunction for SortCost<'_, F> {
    fn time(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.inner.time(x) * x.max(2.0).log2()
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }
}

/// Query/join transform: `time(x) = base_time(x) · max(x, 1)^γ`.
///
/// Models superlinear per-machine work — join-shaped and
/// query-processing loads where cost grows as `x^(1+γ)` over an
/// elementwise base model (γ = 0 degenerates to the base model). The
/// factor is clamped at `1^γ = 1` below one element so the transform
/// stays continuous and monotone near the origin.
#[derive(Debug)]
pub struct QueryCost<'a, F: ?Sized> {
    inner: &'a F,
    gamma: f64,
}

impl<'a, F: CostFunction + ?Sized> QueryCost<'a, F> {
    /// Wraps `inner` with the `x^γ` superlinearity factor.
    ///
    /// # Panics
    ///
    /// If `gamma` is negative or not finite (a negative exponent would
    /// break the monotone-time invariant).
    pub fn new(inner: &'a F, gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma >= 0.0,
            "query cost exponent must be finite and non-negative"
        );
        Self { inner, gamma }
    }

    /// The elementwise base model.
    pub fn inner(&self) -> &F {
        self.inner
    }

    /// The superlinearity exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl<F: CostFunction + ?Sized> CostFunction for QueryCost<'_, F> {
    fn time(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.inner.time(x) * x.max(1.0).powf(self.gamma)
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::check_increasing_time;
    use crate::speed::AnalyticSpeed;

    fn measured() -> PiecewiseLinearCost {
        // A convex (sort-like) measured cost curve.
        PiecewiseLinearCost::new(vec![
            (100.0, 1.0),
            (1_000.0, 15.0),
            (100_000.0, 2_500.0),
            (1_000_000.0, 40_000.0),
        ])
        .unwrap()
    }

    #[test]
    fn interpolates_and_extends() {
        let f = measured();
        assert_eq!(f.time(0.0), 0.0);
        assert_eq!(f.time(50.0), 0.5, "origin segment");
        assert_eq!(f.time(100.0), 1.0);
        let mid = f.time(550.0);
        assert!(mid > 1.0 && mid < 15.0);
        assert!(f.time(2_000_000.0) > 40_000.0, "extends past the last knot");
        assert_eq!(f.max_size(), 1_000_000.0);
        assert!(check_increasing_time(&f, 1.0, 2e6, 300).is_ok());
    }

    #[test]
    fn closed_form_inverts_time() {
        let f = measured();
        for &x in &[10.0, 100.0, 550.0, 40_000.0, 999_999.0] {
            let t = f.time(x);
            let slope = 1.0 / t;
            let back = f.intersect_slope(slope).unwrap();
            assert!(
                (back - x).abs() <= 1e-9 * x,
                "round-trip at {x}: got {back}"
            );
        }
        // A makespan beyond the modelled domain clamps to max_size.
        assert_eq!(f.intersect_slope(1.0 / 1e9).unwrap(), 1_000_000.0);
        assert!(f.intersect_slope(f64::INFINITY).is_none());
    }

    #[test]
    fn rejects_invalid_knots() {
        assert!(PiecewiseLinearCost::new(vec![(1.0, 1.0)]).is_err());
        assert!(PiecewiseLinearCost::new(vec![(2.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(
            PiecewiseLinearCost::new(vec![(1.0, 2.0), (2.0, 1.0)]).is_err(),
            "decreasing time violates the monotone invariant"
        );
        assert!(PiecewiseLinearCost::new(vec![(1.0, 0.0), (2.0, 1.0)]).is_err());
        assert!(PiecewiseLinearCost::new(vec![(-1.0, 1.0), (2.0, 2.0)]).is_err());
    }

    #[test]
    fn sort_cost_is_monotone_and_dominates_base() {
        let base = AnalyticSpeed::decreasing(200.0, 1e7, 1.5);
        let f = SortCost::new(&base);
        assert!(check_increasing_time(&f, 1.0, 1e6, 300).is_ok());
        for &x in &[10.0, 1e3, 1e5] {
            assert!(f.time(x) >= CostFunction::time(&base, x));
        }
        // Rate (slope of the origin line) must strictly decrease.
        assert!(f.rate(1e3) > f.rate(1e4));
        assert_eq!(f.time(0.0), 0.0);
    }

    #[test]
    fn query_cost_is_monotone_and_gamma_zero_is_identity() {
        let base = AnalyticSpeed::decreasing(200.0, 1e7, 1.5);
        let id = QueryCost::new(&base, 0.0);
        for &x in &[10.0, 1e3, 1e5] {
            assert_eq!(id.time(x).to_bits(), CostFunction::time(&base, x).to_bits());
        }
        let f = QueryCost::new(&base, 0.5);
        assert!(check_increasing_time(&f, 1.0, 1e6, 300).is_ok());
        assert!(f.time(1e4) > CostFunction::time(&base, 1e4));
        assert!(f.rate(1e3) > f.rate(1e4));
    }

    #[test]
    #[should_panic(expected = "query cost exponent")]
    fn query_cost_rejects_negative_gamma() {
        let base = AnalyticSpeed::constant(10.0);
        let _ = QueryCost::new(&base, -0.5);
    }
}
