//! Geometric machinery: straight lines through the origin of the
//! (problem size, absolute speed) plane and their intersections with
//! processor speed graphs.
//!
//! Every partitioning algorithm in this crate searches for an *optimally
//! sloped* line `y = c·x`: a distribution is optimal exactly when the
//! points `(x_i, s_i(x_i))` of all processors lie on one such line
//! (paper Fig. 4), because then `x_i / s_i(x_i) = 1/c` for every `i` — all
//! processors finish simultaneously, and the common makespan is the
//! reciprocal of the slope.
//!
//! The shape assumption (`g(x) = s(x)/x` strictly decreasing) guarantees
//! that the intersection of any origin line with any graph is unique, which
//! makes [`intersect_origin_line`] a one-dimensional monotone root-finding
//! problem solved by bisection.
//!
//! The machinery is written against the time-domain [`CostFunction`]
//! contract: `g` is [`CostFunction::rate`] (`= 1/time(x)`), strictly
//! decreasing by the monotone-time invariant, and for speed-backed models
//! the blanket adapter makes `rate(x)` the literal `speed(x)/x` the
//! speed-domain search always computed. Solving `rate(x) = c` is solving
//! `time(x) = 1/c`: the line's slope *is* the reciprocal makespan.

use crate::cost::CostFunction;

/// Slope of the origin line passing through the point `(x, s)`.
///
/// The practical slope representation is the tangent `s/x`, which the paper
/// notes is preferable to angles "for efficiency from computational point
/// of view"; [`crate::partition::BisectionPartitioner`] can bisect either.
#[inline]
pub fn slope_through(x: f64, s: f64) -> f64 {
    s / x
}

/// Makespan (common execution time) of the distribution induced by an
/// origin line of slope `c`: every processor satisfies
/// `x_i/s_i(x_i) = 1/c`.
#[inline]
pub fn makespan_of_slope(slope: f64) -> f64 {
    1.0 / slope
}

/// Slope of the origin line whose induced distribution has makespan `t`.
#[inline]
pub fn slope_of_makespan(t: f64) -> f64 {
    1.0 / t
}

/// Upper bound on intersection abscissas, used to bracket searches on
/// functions with unbounded domain.
const X_CAP: f64 = 1e18;

/// Absolute abscissa below which an intersection is considered to be at the
/// origin (the line is steeper than the whole graph).
const X_ORIGIN: f64 = 1e-9;

/// Solves `s(x) = c·x` for the unique positive intersection abscissa.
///
/// Given the shape assumption, `g(x) = s(x)/x` is strictly decreasing, so
/// the solution is the unique root of `g(x) = c`:
///
/// * if even at vanishing sizes `g < c` (line steeper than the graph
///   everywhere — possible for saturating shapes whose graph passes through
///   the origin), the intersection degenerates to `0`;
/// * if `g > c` over the whole domain (line shallower than the graph — the
///   processor would need more elements than its model covers), the
///   abscissa is clamped to [`CostFunction::max_size`] (or to an internal
///   cap of `10^18` for unbounded models).
///
/// The root is located by exponential bracketing followed by bisection to
/// sub-element precision.
pub fn intersect_origin_line<F: CostFunction + ?Sized>(f: &F, slope: f64) -> f64 {
    assert!(slope.is_finite() && slope > 0.0, "slope must be positive and finite");
    let g = |x: f64| f.rate(x);
    let x_max = f.max_size().min(X_CAP);

    // Models with a closed-form intersection (piece-wise linear, constant)
    // skip the bracketing/bisection search entirely — the dominant cost of
    // every partitioning iteration.
    if let Some(x) = f.intersect_slope(slope) {
        debug_assert!(x >= 0.0, "closed-form intersection must be non-negative");
        return x.min(x_max);
    }

    // The line is steeper than the graph already at vanishing size: the
    // only intersection is at the origin.
    if g(X_ORIGIN) <= slope {
        return 0.0;
    }
    // The line never catches the graph within the model's domain.
    if g(x_max) >= slope {
        return x_max;
    }

    // Exponential bracketing: find lo with g(lo) > slope and hi with
    // g(hi) < slope.
    let mut lo = X_ORIGIN;
    let mut hi = 1.0_f64.min(x_max);
    while g(hi) > slope {
        lo = hi;
        hi = (hi * 2.0).min(x_max);
        if hi >= x_max {
            break;
        }
    }

    // Bisection: monotone g makes this unconditionally convergent.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // float resolution reached
        }
        if g(mid) > slope {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Sum of the intersection abscissas of the line `y = slope·x` with every
/// processor graph: the total number of elements the line "distributes".
///
/// The search for the optimal line is a root-finding problem on this sum:
/// it is strictly decreasing in the slope, and the optimal slope makes it
/// equal to `n` (paper §2 step 2–3).
pub fn total_elements_at_slope<F: CostFunction>(funcs: &[F], slope: f64) -> f64 {
    funcs.iter().map(|f| intersect_origin_line(f, slope)).sum()
}

/// Intersection abscissas of the line with every processor graph.
pub fn intersections_at_slope<F: CostFunction>(funcs: &[F], slope: f64) -> Vec<f64> {
    funcs.iter().map(|f| intersect_origin_line(f, slope)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    #[test]
    fn constant_speed_intersection_is_exact() {
        // s(x) = 100, line y = c·x ⇒ x = 100/c.
        let f = ConstantSpeed::new(100.0);
        for &c in &[0.1, 1.0, 10.0] {
            let x = intersect_origin_line(&f, c);
            assert!((x - 100.0 / c).abs() < 1e-6 * (100.0 / c), "c={c}: x={x}");
        }
    }

    #[test]
    fn intersection_lies_on_both_curves() {
        let f = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        let c = 1e-4;
        let x = intersect_origin_line(&f, c);
        use crate::speed::SpeedFunction as _;
        assert!((f.speed(x) - c * x).abs() <= 1e-6 * f.speed(x).max(1.0));
    }

    #[test]
    fn steeper_line_gives_smaller_abscissa() {
        let f = AnalyticSpeed::decreasing(200.0, 1e6, 2.0);
        let x_steep = intersect_origin_line(&f, 1e-3);
        let x_shallow = intersect_origin_line(&f, 1e-5);
        assert!(x_steep < x_shallow);
    }

    #[test]
    fn saturating_shape_degenerates_to_origin_for_steep_lines() {
        // s(x) = 150·x/(x+1000): g(x) = 150/(x+1000) ≤ 0.15 everywhere.
        let f = AnalyticSpeed::saturating(150.0, 1000.0);
        assert_eq!(intersect_origin_line(&f, 0.2), 0.0);
        let x = intersect_origin_line(&f, 0.01);
        // 150/(x+1000) = 0.01 ⇒ x = 14000.
        assert!((x - 14_000.0).abs() < 1.0, "x = {x}");
    }

    #[test]
    fn bounded_model_clamps_to_max_size() {
        let f = crate::speed::PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (1000.0, 50.0)])
            .unwrap();
        // Beyond the model, speed is clamped at 50; a shallow enough line
        // would intersect past 1000, so the abscissa clamps to max_size.
        let x = intersect_origin_line(&f, 1e-6);
        assert_eq!(x, 1000.0);
    }

    #[test]
    fn total_elements_decreases_with_slope() {
        let funcs = vec![
            AnalyticSpeed::constant(100.0),
            AnalyticSpeed::decreasing(200.0, 1e6, 2.0),
            AnalyticSpeed::paging(300.0, 2e6, 3.0),
        ];
        let hi = total_elements_at_slope(&funcs, 1e-5);
        let lo = total_elements_at_slope(&funcs, 1e-3);
        assert!(hi > lo, "sum of abscissas must decrease as the line steepens");
    }

    #[test]
    fn slope_makespan_roundtrip() {
        let t = 123.456;
        assert!((makespan_of_slope(slope_of_makespan(t)) - t).abs() < 1e-12);
    }

    #[test]
    fn intersections_match_individual_calls() {
        let funcs =
            vec![AnalyticSpeed::constant(10.0), AnalyticSpeed::decreasing(20.0, 1e4, 1.5)];
        let xs = intersections_at_slope(&funcs, 1e-3);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0], intersect_origin_line(&funcs[0], 1e-3));
        assert_eq!(xs[1], intersect_origin_line(&funcs[1], 1e-3));
    }

    #[test]
    #[should_panic(expected = "slope")]
    fn rejects_non_positive_slope() {
        intersect_origin_line(&ConstantSpeed::new(1.0), 0.0);
    }

    #[test]
    fn pure_cost_models_intersect_in_the_time_domain() {
        // Numeric path: time(x) = x²/1e4 has no closed form here, and
        // rate(x) = 1e4/x² is strictly decreasing. The line y = c·x meets
        // the throughput curve where time(x) = 1/c.
        struct Quadratic;
        impl crate::cost::CostFunction for Quadratic {
            fn time(&self, x: f64) -> f64 {
                if x <= 0.0 {
                    0.0
                } else {
                    x * x / 1e4
                }
            }
        }
        let c = 0.5; // makespan 2 ⇒ x = sqrt(2·1e4) ≈ 141.42
        let x = intersect_origin_line(&Quadratic, c);
        assert!((Quadratic.time(x) - 2.0).abs() < 1e-6, "x = {x}");

        // Closed-form path: measured (size, time) knots invert exactly.
        let f = crate::cost::PiecewiseLinearCost::new(vec![(100.0, 1.0), (1000.0, 25.0)])
            .unwrap();
        let x = intersect_origin_line(&f, 1.0); // time(x) = 1 ⇒ first knot
        assert!((x - 100.0).abs() < 1e-9, "x = {x}");
        assert_eq!(intersect_origin_line(&f, 1e-9), 1000.0, "clamps to max_size");
    }

    #[test]
    fn exp_tail_far_intersections_are_resolved() {
        // The basic algorithm's worst case must still be *solvable* by the
        // intersection primitive.
        let f = AnalyticSpeed::exp_tail(100.0, 1e4);
        let x = intersect_origin_line(&f, 1e-12);
        use crate::speed::SpeedFunction as _;
        assert!((f.speed(x) - 1e-12 * x).abs() <= 1e-6 * (1e-12 * x).max(1e-300));
    }
}
