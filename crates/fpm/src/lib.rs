//! # fpm — data partitioning with a realistic performance model
//!
//! Facade crate re-exporting the whole reproduction of *"Data Partitioning
//! with a Realistic Performance Model of Networks of Heterogeneous
//! Computers"* (Lastovetsky & Reddy, IPDPS 2004):
//!
//! * [`core`] — the functional performance model and the geometric
//!   partitioning algorithms (the paper's contribution);
//! * [`simnet`] — the simulated heterogeneous network substrate (the
//!   paper's Tables 1–2 testbeds, memory-hierarchy speed models, workload
//!   fluctuation);
//! * [`kernels`] — dense linear algebra: matrix multiplication, LU,
//!   striped partitioning, the Variable Group Block distribution;
//! * [`exec`] — simulated and real execution engines.
//!
//! ## Quickstart
//!
//! ```
//! use fpm::prelude::*;
//!
//! // The paper's 12-machine testbed running naive matrix multiplication.
//! let cluster = SimCluster::table2(AppProfile::MatrixMult);
//!
//! // Partition a 10 000 × 10 000 multiplication (3·n² elements).
//! let n_elements = 3 * 10_000u64 * 10_000;
//! let report = CombinedPartitioner::new()
//!     .partition(n_elements, cluster.funcs())
//!     .unwrap();
//! assert_eq!(report.distribution.total(), n_elements);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fpm_core as core;
pub use fpm_exec as exec;
pub use fpm_kernels as kernels;
pub use fpm_simnet as simnet;

/// Commonly used items in one import.
pub mod prelude {
    pub use fpm_core::cost::{CachedCost, CostFunction, PiecewiseLinearCost, QueryCost, SortCost};
    pub use fpm_core::partition::{
        bounded, oracle, BisectionPartitioner, BoundedPartitioner, CombinedPartitioner,
        ContiguousPartitioner, Distribution, ModifiedPartitioner, PartitionReport, Partitioner,
        QueryPartitioner, SecantPartitioner, SingleNumberPartitioner, SlopeMode,
        SortSamplePartitioner, DEFAULT_QUERY_GAMMA,
    };
    pub use fpm_core::planner::{registry, AlgorithmId, AlgorithmInfo, DynPartitioner};
    pub use fpm_core::speed::{
        build_speed_band, AnalyticSpeed, BuilderConfig, ConstantSpeed, PiecewiseLinearSpeed,
        SpeedBand, SpeedFunction, WidthLaw,
    };
    pub use fpm_core::{Error, Result};
    pub use fpm_exec::cluster::SimCluster;
    pub use fpm_exec::lu_run::simulate_lu;
    pub use fpm_exec::mm_run::{simulate_mm, simulate_mm_with_distribution};
    pub use fpm_exec::model_build::build_cluster_models;
    pub use fpm_kernels::striped::{rows_from_element_distribution, StripedLayout};
    pub use fpm_kernels::vgb::variable_group_block;
    pub use fpm_kernels::Matrix;
    pub use fpm_simnet::fluctuation::{FluctuatingMeasurer, Integration};
    pub use fpm_simnet::machine::{Arch, MachineSpec};
    pub use fpm_simnet::profile::AppProfile;
    pub use fpm_simnet::speed_model::MachineSpeed;
    pub use fpm_simnet::{testbeds, workload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let cluster = SimCluster::table1(AppProfile::MatrixMult);
        let r = CombinedPartitioner::new().partition(3_000_000, cluster.funcs()).unwrap();
        assert_eq!(r.distribution.total(), 3_000_000);
    }
}
