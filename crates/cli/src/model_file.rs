//! The `.fpm` model-file format.
//!
//! Line-oriented plain text:
//!
//! ```text
//! # comment
//! X1  65536:205.1  3.0e7:198.4  6.1e7:180.0  2.4e8:0
//! X2  65536:198.7  1.4e7:190.2  4.8e7:150.3  1.3e8:0
//! ```
//!
//! Each non-empty, non-comment line is `name` followed by `size:speed`
//! knots (sizes in elements, speeds in MFlops, both accepting scientific
//! notation). The knots must form a valid piece-wise linear speed function
//! (strictly increasing sizes, `s/x` strictly decreasing).

use std::fmt::Write as _;

use fpm_core::error::{Error, Result};
use fpm_core::speed::PiecewiseLinearSpeed;

/// A named speed model, as stored in a model file.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedModel {
    /// Machine name.
    pub name: String,
    /// The speed function.
    pub model: PiecewiseLinearSpeed,
}

/// Parses a model file's contents.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on malformed lines,
/// [`Error::InvalidSpeedFunction`] when knots violate the model
/// requirements.
pub fn parse_models(contents: &str) -> Result<Vec<NamedModel>> {
    let mut out = Vec::new();
    for (lineno, raw) in contents.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("non-empty line has a first token").to_owned();
        let mut knots: Vec<(f64, f64)> = Vec::new();
        for tok in parts {
            let Some((xs, ss)) = tok.split_once(':') else {
                return Err(Error::InvalidParameter(
                    "knot token must be size:speed (line context lost; check the model file)",
                ));
            };
            let x: f64 = xs
                .parse()
                .map_err(|_| Error::InvalidParameter("unparsable knot size"))?;
            let s: f64 = ss
                .parse()
                .map_err(|_| Error::InvalidParameter("unparsable knot speed"))?;
            knots.push((x, s));
        }
        if knots.len() < 2 {
            return Err(Error::InvalidParameter(
                "each processor needs at least two knots",
            ));
        }
        let model = PiecewiseLinearSpeed::new(knots).map_err(|e| match e {
            Error::InvalidSpeedFunction { reason, .. } => Error::InvalidSpeedFunction {
                processor: lineno,
                reason,
            },
            other => other,
        })?;
        out.push(NamedModel { name, model });
    }
    if out.is_empty() {
        return Err(Error::InvalidParameter("model file contains no processors"));
    }
    Ok(out)
}

/// Formats models back into the file format (round-trips with
/// [`parse_models`]).
pub fn format_models(models: &[NamedModel]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# fpm speed-model file: name  size:speed ...");
    for m in models {
        let _ = write!(out, "{}", m.name);
        for &(x, s) in m.model.knots() {
            let _ = write!(out, "  {x:e}:{s:e}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_core::speed::SpeedFunction;

    const SAMPLE: &str = "\
# demo
X1  1000:200  1e6:180  1e8:0
X2  1000:100  5e5:90   5e7:0   # trailing comment
";

    #[test]
    fn parses_sample() {
        let models = parse_models(SAMPLE).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].name, "X1");
        assert_eq!(models[0].model.len(), 3);
        assert!((models[1].model.speed(1000.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn round_trips() {
        let models = parse_models(SAMPLE).unwrap();
        let text = format_models(&models);
        let reparsed = parse_models(&text).unwrap();
        assert_eq!(models, reparsed);
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(parse_models("X1 1000-200 2000:100").is_err());
        assert!(parse_models("X1 abc:200 2000:100").is_err());
        assert!(parse_models("X1 1000:xyz 2000:100").is_err());
    }

    #[test]
    fn rejects_too_few_knots() {
        assert!(parse_models("X1 1000:200").is_err());
    }

    #[test]
    fn rejects_invalid_shape() {
        // s/x increasing: violates the model requirement.
        let e = parse_models("X1 1:1 10:20").unwrap_err();
        assert!(matches!(e, Error::InvalidSpeedFunction { .. }));
    }

    #[test]
    fn rejects_empty_file() {
        assert!(parse_models("# only comments\n\n").is_err());
    }
}
