//! Real multi-threaded execution on the host machine.
//!
//! The simulated runs validate the *partitioning* claims; this module
//! additionally runs the actual kernels on the host so that examples and
//! integration tests can demonstrate the full pipeline end to end:
//! measure → build model → partition → execute → verify the numerics.
//!
//! Host cores are homogeneous, so heterogeneity is *emulated*: worker `i`
//! executes its stripe `replicas[i]` times, making its effective speed
//! `1/replicas[i]` of a core — a simple, deterministic slowdown that the
//! measured speed functions faithfully pick up.
//!
//! All compute routes through the packed cache-blocked kernel
//! ([`fpm_kernels::matmul::matmul_abt_blocked`]) and worker threads come
//! from the persistent [`WorkerPool`] instead of a
//! fresh scope per call.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fpm_kernels::matmul::{
    matmul_abt_blocked, matmul_abt_packed_rows_into_slice, DEFAULT_TILE,
};
use fpm_kernels::matrix::Matrix;
use fpm_kernels::striped::StripedLayout;

use crate::pool::WorkerPool;

/// Controls for the speed-measurement primitive of paper §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Repeat the kernel until at least this much wall time has elapsed,
    /// so the timing is meaningful at small sizes.
    pub min_elapsed: Duration,
    /// Untimed warm-up repetitions run before the clock starts (caches,
    /// frequency scaling).
    pub warmup: u32,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self { min_elapsed: Duration::from_millis(80), warmup: 1 }
    }
}

/// Times the blocked `C = A×Bᵀ` kernel on the host for square matrices of
/// dimension `n` with explicit measurement controls.
///
/// Returns `(speed in MFlops, total elapsed)`.
pub fn measure_mm_speed_with(n: usize, seed: u64, cfg: MeasureConfig) -> (f64, Duration) {
    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed.wrapping_add(1));
    for _ in 0..cfg.warmup {
        let c = matmul_abt_blocked(&a, &b, DEFAULT_TILE);
        assert!(c[(0, 0)].is_finite());
    }
    let start = Instant::now();
    let mut reps = 0u32;
    while reps == 0 || start.elapsed() < cfg.min_elapsed {
        let c = matmul_abt_blocked(&a, &b, DEFAULT_TILE);
        assert!(c[(0, 0)].is_finite());
        reps += 1;
    }
    let elapsed = start.elapsed();
    let flops = 2.0 * (n as f64).powi(3) * reps as f64;
    (flops / elapsed.as_secs_f64().max(1e-9) / 1e6, elapsed)
}

/// [`measure_mm_speed_with`] under the default [`MeasureConfig`] (one
/// warm-up pass, ≥ 80 ms of timed repetitions).
pub fn measure_mm_speed(n: usize, seed: u64) -> (f64, Duration) {
    measure_mm_speed_with(n, seed, MeasureConfig::default())
}

/// Runs the striped parallel multiplication on the persistent worker pool,
/// with worker `i` repeating its stripe `replicas[i]` times to emulate a
/// processor `replicas[i]`× slower than a host core.
///
/// Returns the result matrix and per-worker wall times. This is a
/// convenience wrapper that clones the inputs once; use
/// [`emulated_heterogeneous_mm_arc`] to amortise that copy across calls.
pub fn emulated_heterogeneous_mm(
    a: &Matrix,
    b: &Matrix,
    layout: &StripedLayout,
    replicas: &[usize],
) -> (Matrix, Vec<Duration>) {
    emulated_heterogeneous_mm_arc(Arc::new(a.clone()), Arc::new(b.clone()), layout, replicas)
}

/// Pool-based striped multiplication over shared matrices. Each stripe is
/// one `'static` job on the [`WorkerPool`]: the worker computes its rows
/// into an owned buffer with the packed kernel and the caller assembles
/// the stripes back into `C` in layout order.
pub fn emulated_heterogeneous_mm_arc(
    a: Arc<Matrix>,
    b: Arc<Matrix>,
    layout: &StripedLayout,
    replicas: &[usize],
) -> (Matrix, Vec<Duration>) {
    assert_eq!(layout.row_counts().len(), replicas.len(), "one replica factor per worker");
    assert_eq!(layout.total_rows(), a.rows());
    type StripeJob = Box<dyn FnOnce() -> (Vec<f64>, Duration) + Send>;
    let ranges = layout.ranges();
    let tasks: Vec<StripeJob> = ranges
        .iter()
        .zip(replicas)
        .map(|(&(r0, r1), &reps)| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            Box::new(move || {
                let t0 = Instant::now();
                let mut stripe = vec![0.0f64; (r1 - r0) * b.rows()];
                if r1 > r0 {
                    for _ in 0..reps.max(1) {
                        matmul_abt_packed_rows_into_slice(&a, &b, r0, r1, &mut stripe, DEFAULT_TILE);
                    }
                }
                (stripe, t0.elapsed())
            }) as StripeJob
        })
        .collect();
    let results = WorkerPool::global().run(tasks);

    let mut c = Matrix::zeros(a.rows(), b.rows());
    let mut times = Vec::with_capacity(results.len());
    for (&(r0, r1), (stripe, elapsed)) in ranges.iter().zip(results) {
        c.stripe_mut(r0, r1).copy_from_slice(&stripe);
        times.push(elapsed);
    }
    (c, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_kernels::matmul::matmul_abt;

    #[test]
    fn measured_speed_is_positive() {
        let (mflops, elapsed) = measure_mm_speed(64, 1);
        assert!(mflops > 0.0);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn measure_config_floor_is_respected() {
        let cfg = MeasureConfig { min_elapsed: Duration::from_millis(5), warmup: 0 };
        let (mflops, elapsed) = measure_mm_speed_with(32, 9, cfg);
        assert!(mflops > 0.0);
        assert!(elapsed >= cfg.min_elapsed);
    }

    #[test]
    fn zero_floor_times_a_single_repetition() {
        let cfg = MeasureConfig { min_elapsed: Duration::ZERO, warmup: 0 };
        let (mflops, elapsed) = measure_mm_speed_with(16, 5, cfg);
        assert!(mflops > 0.0);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn emulated_run_produces_correct_result() {
        let a = Matrix::random(30, 20, 1);
        let b = Matrix::random(24, 20, 2);
        let layout = StripedLayout::new(vec![10, 20]);
        let (c, times) = emulated_heterogeneous_mm(&a, &b, &layout, &[1, 2]);
        assert!(c.max_diff(&matmul_abt(&a, &b)) < 1e-12);
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn emulated_run_handles_empty_stripes() {
        let a = Matrix::random(12, 8, 5);
        let b = Matrix::random(10, 8, 6);
        let layout = StripedLayout::new(vec![0, 12, 0]);
        let (c, times) = emulated_heterogeneous_mm(&a, &b, &layout, &[1, 1, 1]);
        assert!(c.max_diff(&matmul_abt(&a, &b)) < 1e-12);
        assert_eq!(times.len(), 3);
    }

    #[test]
    fn replicas_slow_down_their_worker() {
        let a = Matrix::random(128, 96, 3);
        let b = Matrix::random(96, 96, 4);
        let layout = StripedLayout::new(vec![64, 64]);
        // Worker 1 does 8× the work of worker 0 on the same stripe size.
        let (_c, times) = emulated_heterogeneous_mm(&a, &b, &layout, &[1, 8]);
        assert!(
            times[1] > times[0],
            "8 replicas must take longer: {:?}",
            times
        );
    }

    #[test]
    #[should_panic(expected = "one replica factor")]
    fn replica_count_must_match() {
        let a = Matrix::random(4, 4, 1);
        let b = Matrix::random(4, 4, 2);
        emulated_heterogeneous_mm(&a, &b, &StripedLayout::new(vec![4]), &[1, 2]);
    }
}
