//! The general partitioning formulation (paper §1, reference \[20\]):
//! weighted elements and per-processor upper bounds.
//!
//! The paper's main text solves the "simple variant" — unit weights, no
//! bounds. The general problem it is a stepping stone towards adds:
//!
//! 1. an upper bound `b_i` on the number of elements each processor can
//!    store (its memory capacity), and
//! 2. element weights `w_j`, with the sum of weights per partition required
//!    to be proportional to the owning processor's speed.
//!
//! The bounded unit-weight problem remains exactly solvable by a
//! *water-filling* variant of the geometric search: the allocation induced
//! by a line of slope `c` is `min(x_i(c), b_i)`, still monotone in the
//! slope, so the same bisection applies. The discrete weighted problem is
//! NP-hard in general (it contains multiprocessor scheduling); the provided
//! solver computes the continuous optimum and rounds it with an LPT-style
//! greedy, which is the standard practical compromise.

use super::fine_tune::fine_tune_capped;
use super::problem::{empty_report, validate_processors, PartitionReport};
use crate::error::{Error, Result};
use crate::cost::CostFunction;
use crate::geometry::intersect_origin_line;
use crate::trace::Trace;

/// Allocation induced by slope `c` under caps: `min(x_i(c), b_i)`.
fn capped_intersections<F: CostFunction>(funcs: &[F], caps: &[u64], slope: f64) -> Vec<f64> {
    funcs
        .iter()
        .zip(caps)
        .map(|(f, &b)| intersect_origin_line(f, slope).min(b as f64))
        .collect()
}

/// Partitions `n` unit-weight elements over processors with per-processor
/// capacity bounds `caps` (elements).
///
/// # Errors
///
/// * [`Error::InsufficientCapacity`] if `Σ caps < n`;
/// * [`Error::NoProcessors`] for an empty processor list.
pub fn partition_bounded<F: CostFunction>(
    n: u64,
    funcs: &[F],
    caps: &[u64],
) -> Result<PartitionReport> {
    validate_processors(funcs)?;
    assert_eq!(funcs.len(), caps.len(), "caps length mismatch");
    if n == 0 {
        return Ok(empty_report(funcs.len()));
    }
    let capacity: u64 = caps.iter().fold(0u64, |a, &c| a.saturating_add(c));
    if capacity < n {
        return Err(Error::InsufficientCapacity { requested: n, available: capacity });
    }
    let target = n as f64;

    // Bracket the slope: steep side undershoots, shallow side overshoots.
    // Caps only lower totals, so the steep side from the uncapped problem
    // still undershoots; the shallow side may need to go much further down
    // because capped processors stop contributing.
    let mut steep = {
        let mut c = 1.0;
        let mut guard = 0;
        while capped_intersections(funcs, caps, c).iter().sum::<f64>() > target {
            c *= 4.0;
            guard += 1;
            if guard > 400 {
                return Err(Error::NoConvergence { algorithm: "bounded bracket", steps: guard });
            }
        }
        c
    };
    let mut shallow = {
        let mut c = steep;
        let mut guard = 0;
        while capped_intersections(funcs, caps, c).iter().sum::<f64>() < target {
            c /= 4.0;
            guard += 1;
            if guard > 400 {
                // Capacity is sufficient (checked above) but some models
                // saturate below their cap: fall back to the caps
                // themselves as the upper allocation.
                break;
            }
        }
        c
    };

    for _ in 0..400 {
        let mid = 0.5 * (shallow + steep);
        if !(mid > shallow && mid < steep) {
            break;
        }
        let total: f64 = capped_intersections(funcs, caps, mid).iter().sum();
        if total < target {
            steep = mid;
        } else {
            shallow = mid;
        }
        if steep - shallow <= f64::EPSILON * steep {
            break;
        }
    }

    let lo_x = capped_intersections(funcs, caps, steep);
    let hi_x = capped_intersections(funcs, caps, shallow);
    let distribution = fine_tune_capped(n, funcs, &lo_x, &hi_x, Some(caps))?;
    Ok(PartitionReport::from_distribution(distribution, funcs, Trace::default()))
}

/// [`Partitioner`](crate::partition::Partitioner) adapter over [`partition_bounded`], exposed through the
/// planner registry as `bounded`.
///
/// Runs the water-filling solver with every cap fixed at `n` — caps that
/// can never bind — so it solves the paper's *unbounded* problem through
/// the bounded machinery and is exact in the same sense as the geometric
/// family: slope bisection over the capped intersections followed by the
/// paper's fine-tuning, landing within the integer-rounding envelope of
/// the continuous optimum (oracle-checked in the conformance sweep). The
/// report carries an empty [`Trace`]: the solver does not record the
/// per-iteration regions the traced algorithms do.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundedPartitioner;

impl super::problem::Partitioner for BoundedPartitioner {
    fn partition<F: CostFunction>(&self, n: u64, funcs: &[F]) -> Result<PartitionReport> {
        let caps = vec![n; funcs.len()];
        partition_bounded(n, funcs, &caps)
    }
}

/// A weighted-items partition: which processor owns each item.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedAssignment {
    /// `owner[j]` is the processor index assigned item `j`.
    pub owner: Vec<usize>,
    /// Total weight per processor.
    pub loads: Vec<f64>,
    /// Number of items per processor.
    pub item_counts: Vec<u64>,
    /// Maximum per-processor execution time, evaluating each speed function
    /// at the processor's total assigned weight.
    pub makespan: f64,
}

/// Assigns weighted items to processors, respecting per-processor item
/// count caps, aiming to equalise `load_i / s_i(load_i)`.
///
/// Greedy LPT over the functional model: items are sorted by decreasing
/// weight and each goes to the processor minimising its post-assignment
/// execution time among processors with spare item capacity. The
/// continuous relaxation of this problem is exactly the unit-element
/// problem with `x` measured in weight units, so on near-uniform weights
/// the greedy converges to the geometric optimum.
///
/// # Errors
///
/// [`Error::InsufficientCapacity`] if `Σ caps` is fewer than the number of
/// items.
pub fn partition_weighted<F: CostFunction>(
    weights: &[f64],
    funcs: &[F],
    caps: Option<&[u64]>,
) -> Result<WeightedAssignment> {
    validate_processors(funcs)?;
    let p = funcs.len();
    if let Some(c) = caps {
        assert_eq!(c.len(), p, "caps length mismatch");
        let capacity: u64 = c.iter().fold(0u64, |a, &x| a.saturating_add(x));
        if capacity < weights.len() as u64 {
            return Err(Error::InsufficientCapacity {
                requested: weights.len() as u64,
                available: capacity,
            });
        }
    }
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative and finite"
    );
    let cap_of = |i: usize| caps.map_or(u64::MAX, |c| c[i]);

    // Sort items by decreasing weight (indices).
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));

    let mut owner = vec![0usize; weights.len()];
    let mut loads = vec![0.0f64; p];
    let mut item_counts = vec![0u64; p];
    for &j in &order {
        let w = weights[j];
        // Pick the processor minimising the post-assignment time.
        let mut best = usize::MAX;
        let mut best_time = f64::INFINITY;
        for i in 0..p {
            if item_counts[i] >= cap_of(i) {
                continue;
            }
            let t = funcs[i].time(loads[i] + w);
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        if best == usize::MAX {
            return Err(Error::InsufficientCapacity {
                requested: weights.len() as u64,
                available: item_counts.iter().sum(),
            });
        }
        owner[j] = best;
        loads[best] += w;
        item_counts[best] += 1;
    }
    let makespan = loads
        .iter()
        .zip(funcs)
        .map(|(&l, f)| f.time(l))
        .fold(0.0, f64::max);
    Ok(WeightedAssignment { owner, loads, item_counts, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::oracle;
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    #[test]
    fn unbounded_caps_match_unbounded_solution() {
        let funcs = vec![
            AnalyticSpeed::decreasing(200.0, 1e6, 2.0),
            AnalyticSpeed::paging(300.0, 2e6, 3.0),
        ];
        let caps = vec![u64::MAX, u64::MAX];
        let n = 1_000_000;
        let bounded = partition_bounded(n, &funcs, &caps).unwrap();
        let free = oracle::solve(n, &funcs).unwrap();
        let rel = (bounded.makespan - free.makespan).abs() / free.makespan;
        assert!(rel < 1e-3, "{} vs {}", bounded.makespan, free.makespan);
    }

    #[test]
    fn caps_bind_and_spill_to_others() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(1.0)];
        // Unbounded, the fast machine would take ~99%; cap it at 50.
        let r = partition_bounded(100, &funcs, &[50, 100]).unwrap();
        assert_eq!(r.distribution.counts()[0], 50);
        assert_eq!(r.distribution.counts()[1], 50);
    }

    #[test]
    fn exact_capacity_fit() {
        let funcs = vec![ConstantSpeed::new(3.0), ConstantSpeed::new(7.0)];
        let r = partition_bounded(30, &funcs, &[10, 20]).unwrap();
        assert_eq!(r.distribution.counts(), &[10, 20]);
    }

    #[test]
    fn insufficient_capacity_is_an_error() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        let e = partition_bounded(10, &funcs, &[5]).unwrap_err();
        assert!(matches!(e, Error::InsufficientCapacity { available: 5, requested: 10 }));
    }

    #[test]
    fn weighted_assignment_balances_heterogeneous_machines() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(50.0)];
        let weights = vec![1.0; 300];
        let a = partition_weighted(&weights, &funcs, None).unwrap();
        assert_eq!(a.owner.len(), 300);
        // ~2:1 split.
        assert!((a.loads[0] - 200.0).abs() <= 2.0, "loads: {:?}", a.loads);
        let t0 = a.loads[0] / 100.0;
        let t1 = a.loads[1] / 50.0;
        assert!((t0 - t1).abs() / t0 < 0.05);
    }

    #[test]
    fn weighted_respects_caps() {
        let funcs = vec![ConstantSpeed::new(1000.0), ConstantSpeed::new(1.0)];
        let weights = vec![1.0; 20];
        let a = partition_weighted(&weights, &funcs, Some(&[5, 100])).unwrap();
        assert_eq!(a.item_counts[0], 5, "fast machine hits its cap");
        assert_eq!(a.item_counts[1], 15);
    }

    #[test]
    fn weighted_uneven_items_prefer_fast_machine_for_big_items() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(10.0)];
        let weights = vec![100.0, 1.0, 1.0, 1.0];
        let a = partition_weighted(&weights, &funcs, None).unwrap();
        assert_eq!(a.owner[0], 0, "the heavy item goes to the fast machine");
        assert!((a.makespan - funcs[0].time(a.loads[0])).abs() < 1e-9
            || (a.makespan - funcs[1].time(a.loads[1])).abs() < 1e-9);
    }

    #[test]
    fn weighted_infeasible_caps_error() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        let weights = vec![1.0; 5];
        assert!(partition_weighted(&weights, &funcs, Some(&[3])).is_err());
    }

    #[test]
    fn zero_items() {
        let funcs = vec![ConstantSpeed::new(1.0)];
        let a = partition_weighted(&[], &funcs, None).unwrap();
        assert!(a.owner.is_empty());
        assert_eq!(a.makespan, 0.0);
        let r = partition_bounded(0, &funcs, &[10]).unwrap();
        assert_eq!(r.distribution.total(), 0);
    }

    #[test]
    fn partitioner_adapter_matches_non_binding_caps_and_oracle() {
        use super::super::problem::Partitioner as _;
        let funcs = vec![
            AnalyticSpeed::decreasing(200.0, 1e6, 2.0),
            AnalyticSpeed::paging(300.0, 2e6, 3.0),
            AnalyticSpeed::constant(75.0),
        ];
        let n = 2_500_000;
        let report = BoundedPartitioner.partition(n, &funcs).unwrap();
        assert_eq!(report.distribution.total(), n);
        // Identical to the explicit non-binding-caps call.
        let explicit = partition_bounded(n, &funcs, &[n, n, n]).unwrap();
        assert_eq!(report.distribution.counts(), explicit.distribution.counts());
        assert_eq!(report.makespan.to_bits(), explicit.makespan.to_bits());
        // Oracle-differential exactness.
        let free = oracle::solve(n, &funcs).unwrap();
        let rel = (report.makespan - free.makespan).abs() / free.makespan;
        assert!(rel < 5e-3, "{} vs oracle {}", report.makespan, free.makespan);
    }

    #[test]
    fn bounded_with_paging_models_avoids_overloading_small_memory() {
        // The capped machine pages hard; the cap mirrors its memory.
        let funcs = vec![
            AnalyticSpeed::paging(300.0, 1e5, 4.0),
            AnalyticSpeed::constant(50.0),
        ];
        let r = partition_bounded(1_000_000, &funcs, &[200_000, u64::MAX]).unwrap();
        assert!(r.distribution.counts()[0] <= 200_000);
        assert_eq!(r.distribution.total(), 1_000_000);
    }
}
