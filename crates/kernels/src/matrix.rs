//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// If `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix with entries in `[-1, 1)`,
    /// diagonally shifted so that square matrices are strictly diagonally
    /// dominant (and thus LU-factorisable without pivoting).
    ///
    /// A small multiplicative congruential generator keeps the kernels free
    /// of heavyweight dependencies.
    pub fn diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut m = Self::from_fn(n, n, |_, _| next());
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    }

    /// Deterministic pseudo-random rectangular matrix with entries in
    /// `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        Self::from_fn(rows, cols, |_, _| next())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored elements (the paper's problem-size measure).
    pub fn elements(&self) -> usize {
        self.rows * self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable slices of the row block `[r0, r1)`, useful for handing
    /// disjoint stripes to worker threads.
    pub fn stripe_mut(&mut self, r0: usize, r1: usize) -> &mut [f64] {
        assert!(r0 <= r1 && r1 <= self.rows);
        &mut self.data[r0 * self.cols..r1 * self.cols]
    }

    /// Splits the matrix into disjoint mutable row stripes at the given
    /// boundaries (`boundaries` are cumulative row counts ending at
    /// `rows`).
    pub fn split_stripes_mut(&mut self, boundaries: &[usize]) -> Vec<&mut [f64]> {
        assert_eq!(boundaries.last().copied(), Some(self.rows), "boundaries must end at rows");
        let cols = self.cols;
        let mut out = Vec::with_capacity(boundaries.len());
        let mut rest: &mut [f64] = &mut self.data;
        let mut prev = 0usize;
        for &b in boundaries {
            assert!(b >= prev, "boundaries must be non-decreasing");
            let (head, tail) = rest.split_at_mut((b - prev) * cols);
            out.push(head);
            rest = tail;
            prev = b;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Max-norm distance to `other`.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The square sub-matrix `rows × cols` starting at `(r, c)`.
    pub fn submatrix(&self, r: usize, c: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r + rows <= self.rows && c + cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self[(r + i, c + j)])
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> =
                self.row(i)[..cols].iter().map(|v| format!("{v:9.4}")).collect();
            writeln!(f, "  {}{}", row.join(" "), if self.cols > 8 { " …" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.elements(), 6);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn identity() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::random(3, 5, 42);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn diagonally_dominant_is_dominant() {
        let m = Matrix::diagonally_dominant(20, 7);
        for i in 0..20 {
            let off: f64 =
                (0..20).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn random_is_reproducible() {
        assert_eq!(Matrix::random(4, 4, 9), Matrix::random(4, 4, 9));
        assert_ne!(Matrix::random(4, 4, 9), Matrix::random(4, 4, 10));
    }

    #[test]
    fn split_stripes() {
        let mut m = Matrix::from_fn(4, 2, |i, _| i as f64);
        let stripes = m.split_stripes_mut(&[1, 3, 4]);
        assert_eq!(stripes.len(), 3);
        assert_eq!(stripes[0], &[0.0, 0.0]);
        assert_eq!(stripes[1], &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(stripes[2], &[3.0, 3.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        let s = m.submatrix(1, 2, 2, 2);
        assert_eq!(s[(0, 0)], 12.0);
        assert_eq!(s[(1, 1)], 23.0);
    }

    #[test]
    fn max_diff() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b[(1, 1)] = 0.5;
        assert_eq!(a.max_diff(&b), 0.5);
    }
}
