//! The router daemon: a nonblocking poll(2) event loop on the client
//! side, a small pool of blocking upstream connections per shard, and the
//! routing/replication/failover logic in between.
//!
//! # Architecture
//!
//! The client-facing side is the same single-threaded event-loop design
//! as `fpm-serve`'s server (same poll shim, same per-connection state
//! machine with ordered response slots, pipelining and drain semantics).
//! The loop never blocks on a shard: forwarding hands the raw request
//! line to a per-shard upstream worker (a thread owning one blocking
//! [`fpm_serve::Client`] connection), and the worker posts the raw reply
//! line back through a channel plus self-wake pipe — exactly how the
//! serve loop hands solves to its worker pool.
//!
//! ```text
//!  clients ──poll(2) loop──▶ slot queue ──▶ per-shard job queues
//!                ▲                               │ (N upstream conns each)
//!                │ waker + completion channel    ▼
//!                └────────────────────────── shard workers ──TCP──▶ fpm-serve
//! ```
//!
//! # Routing
//!
//! Every request that names a cluster is routed by consistent hash of its
//! routing key ([`crate::ring::HashRing`]): the cluster *name*, or for
//! fingerprint-addressed requests the name the fingerprint was learned
//! under (the router remembers `fingerprint → key` from `register` and
//! `report` replies). `register`/`report` fan out to the owner plus
//! `replicas - 1` successor shards so every replica holds the same model
//! (both verbs are deterministic, so replicas stay bit-identical);
//! `partition`/`partition_batch` go to the owner and fail over through
//! the replica set when a shard is unreachable, answers `shutting_down`,
//! or dies mid-request. Request and reply lines are forwarded *verbatim*,
//! which is what makes routed results bit-identical to single-node serving.
//!
//! # Health
//!
//! A shard is marked unhealthy passively (any transport failure on a
//! worker or stats leg) and recovers via a per-shard prober that pings on
//! a fixed interval while healthy and with exponential backoff (capped)
//! while down. Workers fail jobs against a down shard immediately — the
//! failover path answers from a replica without waiting on connect
//! timeouts.
//!
//! When the prober flips a shard back to healthy, the router *catches
//! the replica up*: every remembered `register` line whose replica set
//! includes the recovered shard is replayed to it (fire-and-forget, and
//! idempotent — registration is deterministic, so a shard that never
//! actually lost its registry converges to the same state). The replay
//! store is keyed by the same cluster names the `fingerprint → name`
//! alias map resolves to, so a shard that restarted empty serves both
//! name- and fingerprint-addressed requests again without any client
//! intervention.
//!
//! # Caveat
//!
//! Replies on one client connection stay strictly in request order, but a
//! fan-out verb (`register`/`report`) pipelined *ahead* of a dependent
//! `partition` on the same connection may reach the shards after it —
//! issue dependent requests after the fan-out's reply, as the tests do.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::RouterMetrics;
use crate::ring::{HashRing, DEFAULT_VNODES};
use fpm_serve::client::{Client, SHARD_UNAVAILABLE};
use fpm_serve::json::{Json, JsonRef, JsonStr};
use fpm_serve::metrics::{Counters, HistogramSnapshot};
use fpm_serve::poll as sys;
use fpm_serve::protocol::{
    parse_id_ref, parse_report_target_ref, parse_target_ref, ClusterRefView, ProtoError,
    MAX_FRAME_BYTES,
};

/// How long a draining router waits for in-flight legs and final writes.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Poll tick while draining, so grace expiry is noticed promptly.
const DRAIN_TICK_MS: i32 = 25;
/// Read chunk size for client sockets.
const READ_CHUNK: usize = 64 * 1024;
/// Compact the write buffer once this many flushed bytes accumulate.
const WBUF_COMPACT: usize = 64 * 1024;
/// How long a worker waits on its job queue before re-checking shutdown.
const WORKER_TICK: Duration = Duration::from_millis(100);
/// TCP connect bound for upstream workers and probes.
const UPSTREAM_CONNECT: Duration = Duration::from_secs(1);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: SocketAddr,
    /// Backend fpm-serve shards, in ring order.
    pub shards: Vec<SocketAddr>,
    /// Replication factor for `register`/`report` fan-out and the
    /// failover set of `partition` (clamped to the shard count).
    pub replicas: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Upstream connections (worker threads) per shard.
    pub upstream_conns: usize,
    /// Read timeout on shard replies, milliseconds.
    pub upstream_timeout_ms: u64,
    /// Health-probe interval while a shard is healthy, milliseconds.
    pub probe_interval_ms: u64,
    /// First reconnect-probe delay after a shard goes down, milliseconds.
    pub backoff_base_ms: u64,
    /// Reconnect-probe delay cap, milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("literal address"),
            shards: Vec::new(),
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            upstream_conns: 4,
            upstream_timeout_ms: 30_000,
            probe_interval_ms: 250,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// One shard as the router sees it: its address, a passive+probed health
/// flag and the job queue its upstream workers drain.
struct ShardSlot {
    addr: SocketAddr,
    healthy: AtomicBool,
    jobs: mpsc::Sender<UpJob>,
}

/// Shared state of one running router.
struct Shared {
    config: RouterConfig,
    ring: HashRing,
    shards: Vec<ShardSlot>,
    metrics: RouterMetrics,
    stopping: AtomicBool,
    /// `routing key → last acknowledged raw register line`, replayed to
    /// a shard when the prober brings it back (replica catch-up). The
    /// keys are the cluster names the fingerprint alias map points at.
    catchup: Mutex<HashMap<String, String>>,
}

impl Shared {
    fn mark_down(&self, shard: usize) {
        if self.shards[shard].healthy.swap(false, Ordering::SeqCst) {
            self.metrics.inc(&self.metrics.shard_down_marks);
        }
    }

    /// Flips a shard healthy; true only on a down → up transition.
    fn mark_up(&self, shard: usize) -> bool {
        if !self.shards[shard].healthy.swap(true, Ordering::SeqCst) {
            self.metrics.inc(&self.metrics.shard_up_marks);
            return true;
        }
        false
    }

    /// Replays every remembered register line whose replica set includes
    /// `shard`. Fire-and-forget: a crash-restarted (empty) shard
    /// re-learns the models it replicates; a shard that merely lost
    /// connectivity re-registers identically (registration is
    /// deterministic), so the replay is idempotent either way.
    fn catch_up(&self, shard: usize) {
        let catchup = self.catchup.lock().expect("catchup lock");
        for (key, line) in catchup.iter() {
            if self.ring.route(key, self.config.replicas).contains(&shard)
                && self.shards[shard].jobs.send(UpJob::Fire { line: line.clone() }).is_ok()
            {
                self.metrics.inc(&self.metrics.catchup_replays);
            }
        }
    }
}

/// Handle to a running router; dropping it does **not** stop the daemon —
/// call [`RouterHandle::shutdown_and_join`] (or send the `shutdown` verb).
pub struct RouterHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    driver: Option<JoinHandle<()>>,
    side_threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// Requests shutdown, drains in-flight work and returns the final
    /// router metrics snapshot. Shards are left running — only the
    /// `shutdown` *verb* broadcasts drain to them.
    pub fn shutdown_and_join(mut self) -> Json {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the poller with a no-op connection (dropped unserved).
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
        for t in self.side_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.metrics.snapshot_json()
    }

    /// Point-in-time router metrics snapshot.
    pub fn metrics_json(&self) -> Json {
        self.shared.metrics.snapshot_json()
    }

    /// True once shutdown has been requested (by verb or handle).
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// The replica set (owner first) a routing key maps to — used by the
    /// fault tests and benches to find (and kill) a cluster's owner.
    pub fn route(&self, key: &str) -> Vec<SocketAddr> {
        self.shared
            .ring
            .route(key, self.shared.config.replicas)
            .into_iter()
            .map(|i| self.shared.shards[i].addr)
            .collect()
    }

    /// All shard addresses, in ring order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shared.shards.iter().map(|s| s.addr).collect()
    }
}

/// A job handed to a shard's upstream workers.
enum UpJob {
    /// Round-trip `line` and post the raw reply to the event loop.
    Request { line: String, addr: ReplyAddr },
    /// Fire-and-forget (shutdown broadcast): best-effort send, reply
    /// read and dropped.
    Fire { line: String },
}

/// Where a completed upstream leg is delivered.
#[derive(Clone, Copy)]
struct ReplyAddr {
    conn: u64,
    seq: u64,
    part: usize,
}

/// A finished upstream leg posted back to the event loop.
struct UpDone {
    conn: u64,
    seq: u64,
    part: usize,
    result: Result<String, ProtoError>,
}

/// Write end of the self-wake pipe, cloned into workers.
#[derive(Clone)]
struct Waker(Arc<UnixStream>);

impl Waker {
    fn wake(&self) {
        // Nonblocking: a full pipe already guarantees a pending wake-up.
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// Starts the router; returns once the listener is bound. Fails fast on
/// an empty shard list — a router with nothing behind it serves nothing.
pub fn spawn(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "router needs at least one shard",
        ));
    }
    let listener = TcpListener::bind(config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let waker = Waker(Arc::new(wake_tx));
    let (done_tx, done_rx) = mpsc::channel::<UpDone>();

    let ring = HashRing::new(config.shards.len(), config.vnodes.max(1));
    let mut shards = Vec::with_capacity(config.shards.len());
    let mut queues = Vec::with_capacity(config.shards.len());
    for &shard_addr in &config.shards {
        let (tx, rx) = mpsc::channel::<UpJob>();
        shards.push(ShardSlot { addr: shard_addr, healthy: AtomicBool::new(true), jobs: tx });
        queues.push(Arc::new(Mutex::new(rx)));
    }
    let shared = Arc::new(Shared {
        config: config.clone(),
        ring,
        shards,
        metrics: RouterMetrics::new(),
        stopping: AtomicBool::new(false),
        catchup: Mutex::new(HashMap::new()),
    });

    let mut side_threads = Vec::new();
    for (i, queue) in queues.into_iter().enumerate() {
        for w in 0..config.upstream_conns.max(1) {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let done_tx = done_tx.clone();
            let waker = waker.clone();
            side_threads.push(
                std::thread::Builder::new()
                    .name(format!("fpm-router-up-{i}-{w}"))
                    .spawn(move || upstream_worker(i, queue, shared, done_tx, waker))
                    .expect("spawn upstream worker"),
            );
        }
        let shared_probe = Arc::clone(&shared);
        side_threads.push(
            std::thread::Builder::new()
                .name(format!("fpm-router-probe-{i}"))
                .spawn(move || prober(i, shared_probe))
                .expect("spawn prober"),
        );
    }

    let loop_shared = Arc::clone(&shared);
    let driver = std::thread::Builder::new()
        .name("fpm-router-loop".into())
        .spawn(move || {
            EventLoop {
                listener,
                shared: loop_shared,
                waker_rx: wake_rx,
                done_rx,
                conns: HashMap::new(),
                next_conn: 0,
                read_chunk: vec![0u8; READ_CHUNK],
                aliases: HashMap::new(),
            }
            .run()
        })
        .expect("spawn event-loop thread");
    Ok(RouterHandle { addr, shared, driver: Some(driver), side_threads })
}

// --- upstream workers and probing ---------------------------------------

/// One upstream worker: owns at most one blocking connection to its
/// shard, round-trips jobs one at a time (strict request/reply pairing —
/// no upstream id bookkeeping needed), and posts raw reply lines back.
fn upstream_worker(
    shard: usize,
    queue: Arc<Mutex<mpsc::Receiver<UpJob>>>,
    shared: Arc<Shared>,
    done_tx: mpsc::Sender<UpDone>,
    waker: Waker,
) {
    let read_timeout = Duration::from_millis(shared.config.upstream_timeout_ms.max(1));
    let mut client: Option<Client> = None;
    let mut reply = String::with_capacity(512);
    loop {
        let job = {
            let rx = queue.lock().expect("queue lock");
            rx.recv_timeout(WORKER_TICK)
        };
        let job = match job {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let (line, addr) = match job {
            UpJob::Request { line, addr } => (line, Some(addr)),
            UpJob::Fire { line } => (line, None),
        };
        // Connect lazily. A shard already marked down fails the job
        // immediately: the failover path must not wait on connect
        // timeouts while a replica could answer now.
        if client.is_none() {
            if !shared.shards[shard].healthy.load(Ordering::SeqCst) {
                post(&done_tx, &waker, addr, Err(unavailable(&shared, shard, "marked down")));
                continue;
            }
            match Client::connect_timeout(
                shared.shards[shard].addr,
                Some(UPSTREAM_CONNECT),
                read_timeout,
            ) {
                Ok(c) => client = Some(c),
                Err(e) => {
                    shared.mark_down(shard);
                    post(
                        &done_tx,
                        &waker,
                        addr,
                        Err(unavailable(&shared, shard, &e.to_string())),
                    );
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connected above");
        match conn.request_line(&line, &mut reply) {
            Ok(()) => post(&done_tx, &waker, addr, Ok(reply.clone())),
            Err(e) => {
                // Any failed round-trip abandons the connection: a
                // half-read reply would desynchronise the pairing.
                client = None;
                if e.code == SHARD_UNAVAILABLE {
                    shared.mark_down(shard);
                }
                post(&done_tx, &waker, addr, Err(e));
            }
        }
    }
}

fn post(
    done_tx: &mpsc::Sender<UpDone>,
    waker: &Waker,
    addr: Option<ReplyAddr>,
    result: Result<String, ProtoError>,
) {
    if let Some(ReplyAddr { conn, seq, part }) = addr {
        let _ = done_tx.send(UpDone { conn, seq, part, result });
        waker.wake();
    }
}

fn unavailable(shared: &Shared, shard: usize, detail: &str) -> ProtoError {
    ProtoError::new(
        SHARD_UNAVAILABLE,
        format!("shard {} unavailable: {detail}", shared.shards[shard].addr),
    )
}

/// Per-shard health probe: pings on a fixed interval while the shard is
/// healthy; while it is down, retries with exponential backoff from
/// `backoff_base_ms` up to `backoff_cap_ms` and flips the shard back to
/// healthy on the first successful pong.
fn prober(shard: usize, shared: Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.probe_interval_ms.max(1));
    let base = Duration::from_millis(shared.config.backoff_base_ms.max(1));
    let cap = Duration::from_millis(shared.config.backoff_cap_ms.max(1)).max(base);
    let mut delay = interval;
    loop {
        // Sleep in short slices so shutdown joins promptly even from the
        // backoff cap.
        let deadline = Instant::now() + delay;
        while Instant::now() < deadline {
            if shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        shared.metrics.inc(&shared.metrics.probes);
        let alive = Client::connect_timeout(
            shared.shards[shard].addr,
            Some(UPSTREAM_CONNECT),
            Duration::from_secs(2),
        )
        .ok()
        .and_then(|mut c| c.ping().ok())
        .is_some();
        if alive {
            if shared.mark_up(shard) {
                shared.catch_up(shard);
            }
            delay = interval;
        } else {
            shared.mark_down(shard);
            delay = (delay * 2).clamp(base, cap);
        }
    }
}

// --- response slots ------------------------------------------------------

/// What a response slot is waiting for.
enum SlotState {
    /// Fully rendered (trailing newline included), awaiting its turn.
    Ready(String),
    /// One forwarded request with failover: `candidates[tried]` is the
    /// shard currently asked.
    Forward { raw: String, candidates: Vec<usize>, tried: usize },
    /// A fan-out (`register`/`report`) to every shard in `legs`; the
    /// reply preference is route order (owner first). `register_raw`
    /// carries the raw line of a `register` (None for `report`) so an
    /// acknowledged registration enters the replica catch-up store.
    FanOut {
        key: String,
        legs: Vec<usize>,
        results: Vec<Option<Result<String, ProtoError>>>,
        remaining: usize,
        register_raw: Option<String>,
    },
    /// `cluster_stats`: one stats leg per shard.
    ClusterStats {
        results: Vec<Option<Result<String, ProtoError>>>,
        remaining: usize,
    },
}

/// An ordered response slot (strict request-order replies per connection).
struct Slot {
    seq: u64,
    id: Option<Json>,
    started: Instant,
    state: SlotState,
}

impl Slot {
    fn ready(text: String) -> Self {
        Slot { seq: 0, id: None, started: Instant::now(), state: SlotState::Ready(text) }
    }
}

/// Per-connection state (same shape as the serve loop's).
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    scanned: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    scratch: String,
    pending: VecDeque<Slot>,
    next_seq: u64,
    eof: bool,
    closing: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::with_capacity(4096),
            scanned: 0,
            wbuf: Vec::with_capacity(4096),
            wpos: 0,
            scratch: String::with_capacity(256),
            pending: VecDeque::new(),
            next_seq: 1,
            eof: false,
            closing: false,
            dead: false,
        }
    }

    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn with_out(&mut self, render: impl FnOnce(&mut String)) {
        if self.pending.is_empty() {
            self.scratch.clear();
            render(&mut self.scratch);
            self.scratch.push('\n');
            self.wbuf.extend_from_slice(self.scratch.as_bytes());
        } else {
            let mut out = String::new();
            render(&mut out);
            out.push('\n');
            self.pending.push_back(Slot::ready(out));
        }
    }

    fn pump(&mut self) {
        while matches!(self.pending.front().map(|s| &s.state), Some(SlotState::Ready(_))) {
            let slot = self.pending.pop_front().expect("front checked");
            let SlotState::Ready(text) = slot.state else { unreachable!() };
            self.wbuf.extend_from_slice(text.as_bytes());
        }
    }

    fn try_write(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= WBUF_COMPACT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    fn flushed(&self) -> bool {
        self.pending.is_empty() && self.wpos >= self.wbuf.len()
    }
}

// --- the event loop ------------------------------------------------------

struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    waker_rx: UnixStream,
    done_rx: mpsc::Receiver<UpDone>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    read_chunk: Vec<u8>,
    /// `fingerprint → routing key` learned from register/report replies,
    /// so fingerprint-addressed requests land on the shard set that holds
    /// the model. Only the loop thread touches it.
    aliases: HashMap<String, String>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut stop_at: Option<Instant> = None;
        loop {
            let stopping = self.shared.stopping.load(Ordering::SeqCst);
            if stopping && stop_at.is_none() {
                stop_at = Some(Instant::now() + DRAIN_GRACE);
                for conn in self.conns.values_mut() {
                    conn.eof = true;
                    conn.closing = true;
                }
            }
            self.conns.retain(|_, conn| !(conn.dead || conn.closing && conn.flushed()));
            if stopping
                && (self.conns.is_empty() || stop_at.is_some_and(|t| Instant::now() >= t))
            {
                return;
            }

            fds.clear();
            ids.clear();
            fds.push(sys::PollFd {
                fd: self.listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            fds.push(sys::PollFd {
                fd: self.waker_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !conn.eof {
                    events |= sys::POLLIN;
                }
                if conn.wpos < conn.wbuf.len() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                ids.push(id);
            }

            sys::poll_fds(&mut fds, if stopping { DRAIN_TICK_MS } else { -1 });

            if fds[1].revents != 0 {
                self.drain_waker();
            }
            self.drain_completions();
            if fds[0].revents != 0 {
                self.accept_ready(stopping);
            }
            for (i, &id) in ids.iter().enumerate() {
                let revents = fds[i + 2].revents;
                if revents & sys::POLLNVAL != 0 {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.dead = true;
                    }
                } else if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0 {
                    self.read_ready(id);
                }
            }
            for conn in self.conns.values_mut() {
                conn.pump();
                if conn.wpos < conn.wbuf.len() {
                    conn.try_write();
                }
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self, stopping: bool) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stopping {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.shared.metrics.inc(&self.shared.metrics.connections);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Routes finished upstream legs into their slots, driving failover
    /// and fan-out/stats assembly.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(&done.conn) else {
                continue; // connection gone
            };
            let Some(idx) = conn.pending.iter().position(|s| s.seq == done.seq) else {
                continue; // slot already answered
            };
            let m = &self.shared.metrics;
            let slot = &mut conn.pending[idx];
            let state = std::mem::replace(&mut slot.state, SlotState::Ready(String::new()));
            match state {
                ready @ SlotState::Ready(_) => slot.state = ready,
                SlotState::Forward { raw, candidates, tried } => {
                    // A reply from a draining shard is a failover trigger,
                    // not an answer: the client never asked that shard to
                    // stop.
                    let result = match done.result {
                        Ok(line) if is_shutting_down_reply(&line) => Err(ProtoError::new(
                            SHARD_UNAVAILABLE,
                            "shard is draining",
                        )),
                        other => other,
                    };
                    match result {
                        Ok(mut line) => {
                            m.forward_latency.record(elapsed_us(slot.started));
                            line.push('\n');
                            slot.state = SlotState::Ready(line);
                        }
                        Err(e) if e.code == SHARD_UNAVAILABLE && tried + 1 < candidates.len() => {
                            m.inc(&m.failovers);
                            let next = candidates[tried + 1];
                            let job = UpJob::Request {
                                line: raw.clone(),
                                addr: ReplyAddr { conn: done.conn, seq: done.seq, part: 0 },
                            };
                            if self.shared.shards[next].jobs.send(job).is_ok() {
                                slot.state =
                                    SlotState::Forward { raw, candidates, tried: tried + 1 };
                            } else {
                                m.inc(&m.errors);
                                m.inc(&m.failover_exhausted);
                                let mut out = String::new();
                                render_err(&mut out, display_id(slot.id.as_ref()), &e);
                                out.push('\n');
                                slot.state = SlotState::Ready(out);
                            }
                        }
                        Err(e) => {
                            m.inc(&m.errors);
                            if e.code == SHARD_UNAVAILABLE {
                                m.inc(&m.failover_exhausted);
                            }
                            let mut out = String::new();
                            render_err(&mut out, display_id(slot.id.as_ref()), &e);
                            out.push('\n');
                            slot.state = SlotState::Ready(out);
                        }
                    }
                }
                SlotState::FanOut { key, legs, mut results, mut remaining, register_raw } => {
                    if done.part < results.len() && results[done.part].is_none() {
                        let result = match done.result {
                            Ok(line) if is_shutting_down_reply(&line) => Err(ProtoError::new(
                                SHARD_UNAVAILABLE,
                                "shard is draining",
                            )),
                            other => other,
                        };
                        results[done.part] = Some(result);
                        remaining -= 1;
                    }
                    if remaining == 0 {
                        let rendered = finish_fanout(
                            &mut self.aliases,
                            &self.shared,
                            &key,
                            register_raw.as_deref(),
                            &results,
                            slot.id.as_ref(),
                        );
                        slot.state = SlotState::Ready(rendered);
                    } else {
                        slot.state = SlotState::FanOut {
                            key,
                            legs,
                            results,
                            remaining,
                            register_raw,
                        };
                    }
                }
                SlotState::ClusterStats { mut results, mut remaining } => {
                    if done.part < results.len() && results[done.part].is_none() {
                        results[done.part] = Some(done.result);
                        remaining -= 1;
                    }
                    if remaining == 0 {
                        let mut out = String::new();
                        render_cluster_stats(
                            &self.shared,
                            &mut out,
                            display_id(slot.id.as_ref()),
                            &results,
                        );
                        out.push('\n');
                        slot.state = SlotState::Ready(out);
                    } else {
                        slot.state = SlotState::ClusterStats { results, remaining };
                    }
                }
            }
        }
    }

    fn read_ready(&mut self, id: u64) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        if !conn.eof {
            loop {
                match conn.stream.read(&mut self.read_chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        conn.closing = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&self.read_chunk[..n]);
                        if n < self.read_chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.eof = true;
                        conn.closing = true;
                        break;
                    }
                }
            }
            self.process_lines(id, &mut conn);
        }
        self.conns.insert(id, conn);
    }

    /// Drains every complete line in the read buffer (pipelining), plus a
    /// final partial line on EOF — identical framing to the serve loop.
    fn process_lines(&mut self, id: u64, conn: &mut Conn) {
        let rbuf = std::mem::take(&mut conn.rbuf);
        let mut consumed = 0usize;
        let mut search = conn.scanned;
        let mut halted = false;
        while let Some(off) = rbuf[search..].iter().position(|&b| b == b'\n') {
            let nl = search + off;
            if nl + 1 - consumed > MAX_FRAME_BYTES {
                self.framing_error(conn);
                halted = true;
                break;
            }
            let keep_serving = self.handle_line(id, conn, &rbuf[consumed..nl]);
            consumed = nl + 1;
            search = consumed;
            if !keep_serving {
                halted = true;
                break;
            }
        }
        let mut keep = rbuf;
        if halted {
            keep.clear();
            conn.scanned = 0;
        } else if conn.eof {
            if consumed < keep.len() {
                self.handle_line(id, conn, &keep[consumed..]);
            }
            keep.clear();
            conn.scanned = 0;
        } else {
            keep.drain(..consumed);
            conn.scanned = keep.len();
            if keep.len() > MAX_FRAME_BYTES {
                self.framing_error(conn);
                keep.clear();
                conn.scanned = 0;
            }
        }
        conn.rbuf = keep;
    }

    fn framing_error(&self, conn: &mut Conn) {
        let m = &self.shared.metrics;
        m.inc(&m.errors);
        let e = ProtoError::new("frame_too_large", "request line exceeds 1 MiB");
        conn.with_out(|out| render_err(out, None, &e));
        conn.eof = true;
        conn.closing = true;
    }

    /// Parses and dispatches one request line. Returns false when this
    /// line must be the last served on the connection.
    fn handle_line(&mut self, conn_id: u64, conn: &mut Conn, raw: &[u8]) -> bool {
        let text = String::from_utf8_lossy(raw);
        let line = text.trim();
        if line.is_empty() {
            return true;
        }
        let m = &self.shared.metrics;
        m.inc(&m.requests);
        if self.shared.stopping.load(Ordering::SeqCst) {
            m.inc(&m.errors);
            let e = ProtoError::new("shutting_down", "server is draining");
            conn.with_out(|out| render_err(out, None, &e));
            conn.eof = true;
            conn.closing = true;
            return false;
        }
        let value = match Json::parse_ref(line) {
            Ok(v) => v,
            Err(e) => {
                m.inc(&m.errors);
                let e = ProtoError::new("bad_json", e.to_string());
                conn.with_out(|out| render_err(out, None, &e));
                return true;
            }
        };
        let id = match parse_id_ref(&value) {
            Ok(id) => id,
            Err(e) => {
                m.inc(&m.errors);
                conn.with_out(|out| render_err(out, None, &e));
                return true;
            }
        };
        let disp: Option<&dyn fmt::Display> = id.map(|v| v as &dyn fmt::Display);
        if !matches!(value, JsonRef::Obj(_)) {
            m.inc(&m.errors);
            let e = ProtoError::new("bad_request", "request must be a JSON object");
            conn.with_out(|out| render_err(out, disp, &e));
            return true;
        }
        let Some(verb) = value.get("verb").and_then(JsonRef::as_str) else {
            m.inc(&m.errors);
            let e = ProtoError::new("bad_request", "missing string field: verb");
            conn.with_out(|out| render_err(out, disp, &e));
            return true;
        };
        match verb {
            "ping" => {
                m.inc(&m.ping_requests);
                conn.with_out(|out| {
                    render_ok_head(out, disp, "ping");
                    out.push_str(",\"pong\":true}");
                });
                true
            }
            "stats" => {
                m.inc(&m.stats_requests);
                let snapshot = m.snapshot_json();
                let health = self.shards_health_json();
                conn.with_out(|out| {
                    render_ok_head(out, disp, "stats");
                    let _ = write!(out, ",\"stats\":{snapshot},\"shards\":{health}}}");
                });
                true
            }
            "cluster_stats" => {
                m.inc(&m.cluster_stats_requests);
                self.start_cluster_stats(conn_id, conn, id);
                true
            }
            "shutdown" => {
                m.inc(&m.shutdown_requests);
                // Drain the fleet, then drain the router itself.
                for shard in &self.shared.shards {
                    let _ = shard.jobs.send(UpJob::Fire {
                        line: r#"{"verb":"shutdown"}"#.to_owned(),
                    });
                }
                self.shared.stopping.store(true, Ordering::SeqCst);
                conn.with_out(|out| {
                    render_ok_head(out, disp, "shutdown");
                    out.push_str(",\"draining\":true}");
                });
                conn.eof = true;
                conn.closing = true;
                false
            }
            "register" => {
                let Some(cluster) = value.get("cluster").and_then(JsonRef::as_str) else {
                    m.inc(&m.errors);
                    let e = ProtoError::new("bad_request", "missing string field: cluster");
                    conn.with_out(|out| render_err(out, disp, &e));
                    return true;
                };
                let key = cluster.to_owned();
                self.start_fanout(conn_id, conn, id, line, key, true);
                true
            }
            "report" => match parse_report_target_ref(&value) {
                Ok(target) => {
                    let key = self.routing_key(target);
                    self.start_fanout(conn_id, conn, id, line, key, false);
                    true
                }
                Err(e) => {
                    m.inc(&m.errors);
                    conn.with_out(|out| render_err(out, disp, &e));
                    true
                }
            },
            "partition" | "partition_batch" => match parse_target_ref(&value) {
                Ok(target) => {
                    let key = self.routing_key(target);
                    self.start_forward(conn_id, conn, id, line, &key);
                    true
                }
                Err(e) => {
                    m.inc(&m.errors);
                    conn.with_out(|out| render_err(out, disp, &e));
                    true
                }
            },
            other => {
                m.inc(&m.errors);
                let e = ProtoError::new("unknown_verb", format!("unknown verb: {other:?}"));
                conn.with_out(|out| render_err(out, disp, &e));
                true
            }
        }
    }

    /// The consistent-hash key for a cluster reference: names route as
    /// themselves; fingerprints route as the name they were learned under
    /// (or as the raw fingerprint, which a shard then answers `not_found`
    /// for — same as a single node that never saw the registration).
    fn routing_key(&self, target: ClusterRefView<'_>) -> String {
        match target {
            ClusterRefView::Name(name) => name.to_owned(),
            ClusterRefView::Fingerprint(fp) => {
                self.aliases.get(fp).cloned().unwrap_or_else(|| fp.to_owned())
            }
        }
    }

    /// Forwards one raw line to the owner of `key`, with the replica set
    /// queued as failover candidates.
    fn start_forward(
        &self,
        conn_id: u64,
        conn: &mut Conn,
        id: Option<&JsonRef<'_>>,
        line: &str,
        key: &str,
    ) {
        let m = &self.shared.metrics;
        m.inc(&m.forwarded);
        let candidates = self.shared.ring.route(key, self.shared.config.replicas);
        // Skip shards already known dead: failover now, not after a
        // round-trip failure. Keep at least one candidate so the reply is
        // a real transport error when everything is down.
        let mut live: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&s| self.shared.shards[s].healthy.load(Ordering::SeqCst))
            .collect();
        if live.is_empty() {
            live = candidates;
        }
        let seq = conn.take_seq();
        let raw = line.to_owned();
        let job = UpJob::Request {
            line: raw.clone(),
            addr: ReplyAddr { conn: conn_id, seq, part: 0 },
        };
        conn.pending.push_back(Slot {
            seq,
            id: id.map(JsonRef::to_json),
            started: Instant::now(),
            state: SlotState::Forward { raw, candidates: live.clone(), tried: 0 },
        });
        if self.shared.shards[live[0]].jobs.send(job).is_err() {
            // Worker pool gone (shutdown race): answer directly.
            let slot = conn.pending.back_mut().expect("just pushed");
            m.inc(&m.errors);
            let mut out = String::new();
            render_err(
                &mut out,
                display_id(slot.id.as_ref()),
                &ProtoError::new("shutting_down", "router is draining"),
            );
            out.push('\n');
            slot.state = SlotState::Ready(out);
        }
    }

    /// Fans one raw line out to the owner plus replicas of `key`.
    /// `register` marks a registration whose line feeds the replica
    /// catch-up store once a shard acknowledges it.
    fn start_fanout(
        &mut self,
        conn_id: u64,
        conn: &mut Conn,
        id: Option<&JsonRef<'_>>,
        line: &str,
        key: String,
        register: bool,
    ) {
        let m = &self.shared.metrics;
        m.inc(&m.fanouts);
        let legs = self.shared.ring.route(&key, self.shared.config.replicas);
        let seq = conn.take_seq();
        let mut results: Vec<Option<Result<String, ProtoError>>> = Vec::new();
        let mut remaining = 0usize;
        for (part, &shard) in legs.iter().enumerate() {
            m.inc(&m.fanout_legs);
            let job = UpJob::Request {
                line: line.to_owned(),
                addr: ReplyAddr { conn: conn_id, seq, part },
            };
            if self.shared.shards[shard].jobs.send(job).is_ok() {
                results.push(None);
                remaining += 1;
            } else {
                results.push(Some(Err(ProtoError::new(
                    "shutting_down",
                    "router is draining",
                ))));
            }
        }
        let register_raw = register.then(|| line.to_owned());
        if remaining == 0 {
            // Nothing was sent (shutdown race): answer from what we have.
            let id_owned = id.map(JsonRef::to_json);
            let rendered = finish_fanout(
                &mut self.aliases,
                &self.shared,
                &key,
                register_raw.as_deref(),
                &results,
                id_owned.as_ref(),
            );
            conn.pending.push_back(Slot::ready(rendered));
            return;
        }
        conn.pending.push_back(Slot {
            seq,
            id: id.map(JsonRef::to_json),
            started: Instant::now(),
            state: SlotState::FanOut { key, legs, results, remaining, register_raw },
        });
    }

    /// Fans a `stats` probe to every shard for `cluster_stats`.
    fn start_cluster_stats(&self, conn_id: u64, conn: &mut Conn, id: Option<&JsonRef<'_>>) {
        let seq = conn.take_seq();
        let mut results: Vec<Option<Result<String, ProtoError>>> = Vec::new();
        let mut remaining = 0usize;
        for (part, shard) in self.shared.shards.iter().enumerate() {
            let job = UpJob::Request {
                line: r#"{"verb":"stats"}"#.to_owned(),
                addr: ReplyAddr { conn: conn_id, seq, part },
            };
            if shard.jobs.send(job).is_ok() {
                results.push(None);
                remaining += 1;
            } else {
                results.push(Some(Err(ProtoError::new(
                    "shutting_down",
                    "router is draining",
                ))));
            }
        }
        if remaining == 0 {
            let mut out = String::new();
            render_cluster_stats(
                &self.shared,
                &mut out,
                id.map(|v| v as &dyn fmt::Display),
                &results,
            );
            out.push('\n');
            conn.pending.push_back(Slot::ready(out));
            return;
        }
        conn.pending.push_back(Slot {
            seq,
            id: id.map(JsonRef::to_json),
            started: Instant::now(),
            state: SlotState::ClusterStats { results, remaining },
        });
    }

    fn shards_health_json(&self) -> String {
        let mut out = String::from("[");
        for (i, shard) in self.shared.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"addr\":{},\"healthy\":{}}}",
                JsonStr(&shard.addr.to_string()),
                shard.healthy.load(Ordering::SeqCst)
            );
        }
        out.push(']');
        out
    }
}

/// Picks the fan-out reply (owner first, then any shard that answered at
/// all), learns fingerprint aliases from ok replies, records acknowledged
/// registrations for replica catch-up, and renders the final line
/// (trailing newline included).
fn finish_fanout(
    aliases: &mut HashMap<String, String>,
    shared: &Shared,
    key: &str,
    register_raw: Option<&str>,
    results: &[Option<Result<String, ProtoError>>],
    id: Option<&Json>,
) -> String {
    let m = &shared.metrics;
    // Learn `fingerprint → key` from every ok leg: a later request
    // addressing the model by fingerprint must route to this set.
    let mut acked = false;
    for line in results.iter().flatten().flatten() {
        if let Ok(v) = Json::parse_ref(line) {
            if v.get("ok").and_then(JsonRef::as_bool) == Some(true) {
                acked = true;
                if let Some(fp) = v.get("fingerprint").and_then(JsonRef::as_str) {
                    aliases.insert(fp.to_owned(), key.to_owned());
                }
            }
        }
    }
    // An acknowledged register becomes the cluster's replayable line: if
    // a replica of `key` later restarts empty, the prober-triggered
    // catch-up re-sends exactly what a shard accepted here.
    if acked {
        if let Some(raw) = register_raw {
            shared
                .catchup
                .lock()
                .expect("catchup lock")
                .insert(key.to_owned(), raw.to_owned());
        }
    }
    // Reply preference: first leg (route order: owner, then replicas)
    // that produced *any* protocol reply — ok or a deterministic error
    // like invalid_model, which every replica reproduces.
    let mut last_err: Option<&ProtoError> = None;
    for result in results.iter().flatten() {
        match result {
            Ok(line) => {
                let mut out = line.clone();
                out.push('\n');
                return out;
            }
            Err(e) => last_err = Some(e),
        }
    }
    m.inc(&m.errors);
    m.inc(&m.failover_exhausted);
    let fallback = ProtoError::new(SHARD_UNAVAILABLE, "no replica answered");
    let mut out = String::new();
    render_err(&mut out, display_id(id), last_err.unwrap_or(&fallback));
    out.push('\n');
    out
}

/// Merges per-shard stats legs: counters sum by name, latency histograms
/// sum bucket-wise (exact — all shards share the bucket layout), and each
/// shard reports health from whether its leg answered.
fn render_cluster_stats(
    shared: &Shared,
    out: &mut String,
    id: Option<&dyn fmt::Display>,
    results: &[Option<Result<String, ProtoError>>],
) {
    let mut counters = Counters::new();
    let mut latency = HistogramSnapshot::default();
    let mut healthy = 0usize;
    render_ok_head(out, id, "cluster_stats");
    let _ = write!(out, ",\"total_shards\":{}", shared.shards.len());
    let mut shards_json = String::from("[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            shards_json.push(',');
        }
        let addr = shared.shards[i].addr;
        match result {
            Some(Ok(line)) => {
                let parsed = Json::parse(line).ok();
                let stats = parsed.as_ref().and_then(|v| v.get("stats"));
                if let Some(stats) = stats {
                    counters.merge(&Counters::from_json(stats));
                    if let Some(h) =
                        stats.get("partition_latency").and_then(HistogramSnapshot::from_json)
                    {
                        latency.merge(&h);
                    }
                }
                healthy += 1;
                let requests =
                    stats.and_then(|s| s.get("requests")).and_then(Json::as_u64).unwrap_or(0);
                let _ = write!(
                    shards_json,
                    "{{\"addr\":{},\"healthy\":true,\"requests\":{requests}}}",
                    JsonStr(&addr.to_string())
                );
            }
            Some(Err(e)) => {
                let _ = write!(
                    shards_json,
                    "{{\"addr\":{},\"healthy\":false,\"error\":{}}}",
                    JsonStr(&addr.to_string()),
                    JsonStr(e.code)
                );
            }
            None => {
                let _ = write!(
                    shards_json,
                    "{{\"addr\":{},\"healthy\":false,\"error\":\"no reply\"}}",
                    JsonStr(&addr.to_string())
                );
            }
        }
    }
    shards_json.push(']');
    let mut merged = match counters.to_json() {
        Json::Obj(fields) => fields,
        _ => Vec::new(),
    };
    merged.push(("partition_latency".into(), latency.to_json()));
    let _ = write!(
        out,
        ",\"healthy_shards\":{healthy},\"shards\":{shards_json},\"stats\":{}}}",
        Json::Obj(merged)
    );
}

/// True when a raw reply line is a `shutting_down` refusal from a
/// draining shard.
fn is_shutting_down_reply(line: &str) -> bool {
    // Cheap reject before parsing: the marker string must appear at all.
    if !line.contains("shutting_down") {
        return false;
    }
    match Json::parse_ref(line) {
        Ok(v) => {
            v.get("ok").and_then(JsonRef::as_bool) == Some(false)
                && v.get("error").and_then(JsonRef::as_str) == Some("shutting_down")
        }
        Err(_) => false,
    }
}

fn display_id(id: Option<&Json>) -> Option<&dyn fmt::Display> {
    id.map(|v| v as &dyn fmt::Display)
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

// Same byte sequences as the serve renderers (and protocol::ok_response /
// err_response), so router-local answers are indistinguishable from shard
// answers.

fn render_id(out: &mut String, id: Option<&dyn fmt::Display>) {
    if let Some(id) = id {
        let _ = write!(out, "\"id\":{id},");
    }
}

fn render_ok_head(out: &mut String, id: Option<&dyn fmt::Display>, verb: &str) {
    out.push('{');
    render_id(out, id);
    let _ = write!(out, "\"ok\":true,\"verb\":{}", JsonStr(verb));
}

fn render_err(out: &mut String, id: Option<&dyn fmt::Display>, error: &ProtoError) {
    out.push('{');
    render_id(out, id);
    let _ = write!(
        out,
        "\"ok\":false,\"error\":{},\"message\":{}}}",
        JsonStr(error.code),
        JsonStr(&error.message)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_serve::server::{spawn as spawn_shard, ServerConfig};
    use fpm_serve::AlgorithmId;
    use std::io::{BufRead, BufReader};

    fn demo_models() -> Vec<(String, Vec<(f64, f64)>)> {
        vec![
            ("A".into(), vec![(1e3, 200.0), (1e6, 180.0), (1e9, 0.0)]),
            ("B".into(), vec![(1e3, 100.0), (1e6, 90.0), (1e9, 0.0)]),
        ]
    }

    fn spawn_cluster(n: usize) -> (Vec<fpm_serve::ServerHandle>, RouterHandle) {
        let shards: Vec<fpm_serve::ServerHandle> =
            (0..n).map(|_| spawn_shard(ServerConfig::default()).unwrap()).collect();
        let config = RouterConfig {
            shards: shards.iter().map(|s| s.addr).collect(),
            probe_interval_ms: 50,
            ..RouterConfig::default()
        };
        let router = spawn(config).unwrap();
        (shards, router)
    }

    #[test]
    fn answers_ping_locally_and_routes_partitions() {
        let (shards, router) = spawn_cluster(3);
        let mut client = Client::connect(router.addr, Duration::from_secs(10)).unwrap();
        client.ping().unwrap();
        let reg = client.register_inline("c1", &demo_models()).unwrap();
        assert_eq!(reg.machines, ["A", "B"]);
        let reply = client.partition("c1", 1_000_000, AlgorithmId::Combined, None).unwrap();
        assert_eq!(reply.counts.iter().sum::<u64>(), 1_000_000);
        assert_eq!(reply.fingerprint, reg.fingerprint);
        // By fingerprint too (the router learned the alias on register).
        let mut raw = String::new();
        let line = format!(
            "{{\"id\":9,\"verb\":\"partition\",\"fingerprint\":\"{}\",\"n\":1000000}}",
            reg.fingerprint
        );
        client.request_line(&line, &mut raw).unwrap();
        let v = Json::parse(&raw).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{raw}");
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
        let stats = router.shutdown_and_join();
        assert!(stats.get("forwarded").and_then(Json::as_u64).unwrap_or(0) >= 2);
        assert_eq!(stats.get("fanouts").and_then(Json::as_u64), Some(1));
        for s in shards {
            s.shutdown_and_join();
        }
    }

    #[test]
    fn replication_covers_owner_death() {
        let (mut shards, router) = spawn_cluster(3);
        let mut client = Client::connect(router.addr, Duration::from_secs(10)).unwrap();
        client.register_inline("failover-me", &demo_models()).unwrap();
        let baseline =
            client.partition("failover-me", 500_000, AlgorithmId::Combined, None).unwrap();
        // Kill the owner shard; the replica must answer bit-identically.
        let owner = router.route("failover-me")[0];
        let idx = shards.iter().position(|s| s.addr == owner).unwrap();
        shards.remove(idx).shutdown_and_join();
        let after =
            client.partition("failover-me", 500_000, AlgorithmId::Combined, None).unwrap();
        assert_eq!(baseline.counts, after.counts);
        assert_eq!(baseline.makespan.to_bits(), after.makespan.to_bits());
        let stats = router.shutdown_and_join();
        assert!(stats.get("failovers").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert_eq!(stats.get("failover_exhausted").and_then(Json::as_u64), Some(0));
        for s in shards {
            s.shutdown_and_join();
        }
    }

    #[test]
    fn cluster_stats_merges_counters_and_reports_health() {
        let (mut shards, router) = spawn_cluster(3);
        let mut client = Client::connect(router.addr, Duration::from_secs(10)).unwrap();
        client.register_inline("m1", &demo_models()).unwrap();
        for n in [100_000u64, 200_000, 300_000] {
            client.partition("m1", n, AlgorithmId::Combined, None).unwrap();
        }
        let mut raw = String::new();
        client
            .request_line(r#"{"id":1,"verb":"cluster_stats"}"#, &mut raw)
            .unwrap();
        let v = Json::parse(&raw).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{raw}");
        assert_eq!(v.get("total_shards").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("healthy_shards").and_then(Json::as_u64), Some(3));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("partition_requests").and_then(Json::as_u64), Some(3));
        // The merged latency histogram saw exactly the 3 partitions.
        let lat = stats.get("partition_latency").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(3));
        // Kill one shard: health drops to 2 and the dead shard is called
        // out by address.
        let dead = shards.pop().unwrap();
        let dead_addr = dead.addr.to_string();
        dead.shutdown_and_join();
        client
            .request_line(r#"{"id":2,"verb":"cluster_stats"}"#, &mut raw)
            .unwrap();
        let v = Json::parse(&raw).unwrap();
        assert_eq!(v.get("healthy_shards").and_then(Json::as_u64), Some(2), "{raw}");
        let entry = v
            .get("shards")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .find(|s| s.get("addr").and_then(Json::as_str) == Some(&dead_addr))
            .expect("dead shard listed");
        assert_eq!(entry.get("healthy").and_then(Json::as_bool), Some(false));
        router.shutdown_and_join();
        for s in shards {
            s.shutdown_and_join();
        }
    }

    #[test]
    fn prober_recovers_a_restarted_shard() {
        let (shards, router) = spawn_cluster(2);
        // Kill shard 1 and wait for passive/probe marking.
        let addr1 = shards[1].addr;
        let mut iter = shards.into_iter();
        let keep = iter.next().unwrap();
        iter.next().unwrap().shutdown_and_join();
        let mut client = Client::connect(router.addr, Duration::from_secs(10)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut raw = String::new();
            client.request_line(r#"{"verb":"cluster_stats"}"#, &mut raw).unwrap();
            let v = Json::parse(&raw).unwrap();
            if v.get("healthy_shards").and_then(Json::as_u64) == Some(1) {
                break;
            }
            assert!(Instant::now() < deadline, "shard never marked down");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Resurrect a server on the same port: the prober must flip the
        // shard back to healthy without any restart of the router.
        let revived = spawn_shard(ServerConfig { addr: addr1, ..ServerConfig::default() });
        let Ok(revived) = revived else {
            // The OS may refuse immediate rebinds; the down-marking above
            // already exercised the probe path.
            router.shutdown_and_join();
            keep.shutdown_and_join();
            return;
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut raw = String::new();
            client.request_line(r#"{"verb":"cluster_stats"}"#, &mut raw).unwrap();
            let v = Json::parse(&raw).unwrap();
            if v.get("healthy_shards").and_then(Json::as_u64) == Some(2) {
                break;
            }
            assert!(Instant::now() < deadline, "shard never recovered");
            std::thread::sleep(Duration::from_millis(50));
        }
        let stats = router.shutdown_and_join();
        assert!(stats.get("shard_up_marks").and_then(Json::as_u64).unwrap_or(0) >= 1);
        keep.shutdown_and_join();
        revived.shutdown_and_join();
    }

    #[test]
    fn recovered_shard_relearns_registrations() {
        // Two shards, replicas = 2: every cluster lives on both. Kill one
        // and restart it EMPTY on the same port — the prober flips it
        // healthy and the router replays the remembered register line,
        // so the revived shard answers partition requests for a cluster
        // it was never told about directly.
        let (shards, router) = spawn_cluster(2);
        let mut client = Client::connect(router.addr, Duration::from_secs(10)).unwrap();
        let reg = client.register_inline("relearn", &demo_models()).unwrap();
        let addr1 = shards[1].addr;
        let mut iter = shards.into_iter();
        let keep = iter.next().unwrap();
        iter.next().unwrap().shutdown_and_join();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut raw = String::new();
            client.request_line(r#"{"verb":"cluster_stats"}"#, &mut raw).unwrap();
            let v = Json::parse(&raw).unwrap();
            if v.get("healthy_shards").and_then(Json::as_u64) == Some(1) {
                break;
            }
            assert!(Instant::now() < deadline, "shard never marked down");
            std::thread::sleep(Duration::from_millis(20));
        }
        let revived = spawn_shard(ServerConfig { addr: addr1, ..ServerConfig::default() });
        let Ok(revived) = revived else {
            // The OS may refuse immediate rebinds; nothing to catch up.
            router.shutdown_and_join();
            keep.shutdown_and_join();
            return;
        };
        // Ask the revived shard DIRECTLY: only the catch-up replay can
        // hand it the model, and the replayed registration must produce
        // the same fingerprint the original fan-out did.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let caught_up = Client::connect(revived.addr, Duration::from_secs(2))
                .ok()
                .and_then(|mut direct| {
                    direct.partition("relearn", 250_000, AlgorithmId::Combined, None).ok()
                });
            if let Some(reply) = caught_up {
                assert_eq!(reply.counts.iter().sum::<u64>(), 250_000);
                assert_eq!(reply.fingerprint, reg.fingerprint);
                break;
            }
            assert!(Instant::now() < deadline, "revived shard never caught up");
            std::thread::sleep(Duration::from_millis(50));
        }
        let stats = router.shutdown_and_join();
        assert!(stats.get("catchup_replays").and_then(Json::as_u64).unwrap_or(0) >= 1);
        keep.shutdown_and_join();
        revived.shutdown_and_join();
    }

    #[test]
    fn local_errors_match_shard_spellings() {
        let (shards, router) = spawn_cluster(2);
        let mut router_client = Client::connect(router.addr, Duration::from_secs(5)).unwrap();
        let mut shard_client = Client::connect(shards[0].addr, Duration::from_secs(5)).unwrap();
        // Requests the router answers locally must produce byte-identical
        // lines to a shard answering the same request.
        for line in [
            r#"{"id":1,"verb":"ping"}"#,
            r#"{"id":2,"verb":"warp"}"#,
            r#"{"id":3,"verb":"partition","n":5}"#,
            r#"not json"#,
            r#"[1,2,3]"#,
            r#"{"id":4}"#,
        ] {
            let mut via_router = String::new();
            let mut via_shard = String::new();
            router_client.request_line(line, &mut via_router).unwrap();
            shard_client.request_line(line, &mut via_shard).unwrap();
            assert_eq!(via_router, via_shard, "line {line}");
        }
        router.shutdown_and_join();
        for s in shards {
            s.shutdown_and_join();
        }
    }

    #[test]
    fn shutdown_verb_drains_shards_and_router() {
        let (shards, router) = spawn_cluster(2);
        let mut stream = TcpStream::connect(router.addr).unwrap();
        writeln!(stream, r#"{{"verb":"shutdown"}}"#).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("draining").and_then(Json::as_bool), Some(true));
        assert!(router.is_stopping());
        router.shutdown_and_join();
        // The broadcast reached the shards: they are draining too.
        let deadline = Instant::now() + Duration::from_secs(5);
        for s in &shards {
            while !s.is_stopping() {
                assert!(Instant::now() < deadline, "shard never observed shutdown");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        for s in shards {
            s.shutdown_and_join();
        }
    }
}
