//! # fpm-cli — command-line front end
//!
//! A small, dependency-free CLI for the library:
//!
//! ```text
//! fpm models --testbed table2-mm > cluster.fpm      # export a demo model file
//! fpm partition --model cluster.fpm --n 300000000   # optimal distribution
//! fpm partition --model cluster.fpm --n 3e8 --algorithm single@750000
//! fpm simulate-mm --model cluster.fpm --dim 20000   # functional vs single-number
//! ```
//!
//! The model file format is line-oriented plain text: one processor per
//! line, `name` followed by whitespace-separated `size:speed` knots of its
//! piece-wise linear speed function (sizes in elements, speeds in MFlops;
//! `#` starts a comment). See [`model_file`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod model_file;

pub use model_file::{format_models, parse_models, NamedModel};
