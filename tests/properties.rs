//! Property-based tests over randomly generated heterogeneous clusters.

use fpm::prelude::*;
use fpm_core::geometry::intersect_origin_line;
use fpm_core::partition::oracle;
use proptest::prelude::*;

/// Strategy: one random admissible speed function.
fn arb_speed() -> impl Strategy<Value = AnalyticSpeed> {
    let peak = 10.0f64..500.0;
    let scale = 1e4f64..1e7;
    let alpha = 1.0f64..4.0;
    prop_oneof![
        peak.clone().prop_map(AnalyticSpeed::constant),
        (peak.clone(), scale.clone(), alpha.clone())
            .prop_map(|(p, s, a)| AnalyticSpeed::decreasing(p, s, a)),
        (peak.clone(), scale.clone()).prop_map(|(p, r)| AnalyticSpeed::saturating(p, r)),
        (peak.clone(), 1e3f64..1e5, scale.clone(), alpha.clone())
            .prop_map(|(p, r, g, a)| AnalyticSpeed::unimodal(p, r, g, a)),
        (peak, scale, alpha).prop_map(|(p, g, a)| AnalyticSpeed::paging(p, g, a)),
    ]
}

fn arb_cluster() -> impl Strategy<Value = Vec<AnalyticSpeed>> {
    prop::collection::vec(arb_speed(), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioners_conserve_elements(funcs in arb_cluster(), n in 1u64..100_000_000) {
        let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert_eq!(r.distribution.total(), n);
        let r = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert_eq!(r.distribution.total(), n);
    }

    #[test]
    fn modified_matches_oracle(funcs in arb_cluster(), n in 100u64..50_000_000) {
        let a = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
        let o = oracle::solve(n, &funcs).unwrap();
        let rel = (a.makespan - o.makespan).abs() / o.makespan.max(1e-30);
        prop_assert!(rel < 1e-2, "makespan {} vs oracle {}", a.makespan, o.makespan);
    }

    #[test]
    fn solutions_are_exchange_optimal(funcs in arb_cluster(), n in 100u64..10_000_000) {
        let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert!(oracle::is_exchange_optimal(&r.distribution, &funcs, 1e-6));
    }

    #[test]
    fn single_number_is_never_better(
        funcs in arb_cluster(),
        n in 1_000u64..50_000_000,
        reference in 1e3f64..1e7,
    ) {
        let f = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        let s = SingleNumberPartitioner::at_size(reference).partition(n, &funcs).unwrap();
        prop_assert!(
            f.makespan <= s.makespan * (1.0 + 1e-9),
            "functional {} vs single-number {}", f.makespan, s.makespan
        );
    }

    #[test]
    fn intersections_are_monotone_in_slope(f in arb_speed(), c in 1e-9f64..1e-2) {
        let x1 = intersect_origin_line(&f, c);
        let x2 = intersect_origin_line(&f, c * 2.0);
        prop_assert!(x2 <= x1 + 1e-6, "steeper line must not intersect farther out");
    }

    #[test]
    fn intersection_satisfies_line_equation(f in arb_speed(), c in 1e-9f64..1e-3) {
        let x = intersect_origin_line(&f, c);
        if x > 1.0 && x < 1e17 {
            let s = f.speed(x);
            prop_assert!(
                (s - c * x).abs() <= 1e-5 * s.max(c * x).max(1e-12),
                "s({x}) = {s} vs c·x = {}", c * x
            );
        }
    }

    #[test]
    fn builder_produces_valid_models(f in arb_speed(), seed in 0u64..1_000) {
        let mut noisy = FluctuatingMeasurer::new(f, WidthLaw::Constant(0.03), seed);
        let out = fpm_core::speed::builder::build_speed_band(
            &mut noisy, 1e3, 1e8, BuilderConfig::default());
        if let Ok(out) = out {
            // The built model must itself satisfy the shape requirement.
            prop_assert!(
                fpm_core::speed::check_single_intersection(&out.midline, 1e3, 9e7, 100).is_ok()
            );
        }
    }

    #[test]
    fn bounded_respects_caps(
        funcs in arb_cluster(),
        n in 1u64..1_000_000,
        cap in 1_000u64..10_000_000,
    ) {
        let caps = vec![cap; funcs.len()];
        match bounded::partition_bounded(n, &funcs, &caps) {
            Ok(r) => {
                prop_assert_eq!(r.distribution.total(), n);
                for &x in r.distribution.counts() {
                    prop_assert!(x <= cap);
                }
            }
            Err(Error::InsufficientCapacity { .. }) => {
                prop_assert!(cap.saturating_mul(funcs.len() as u64) < n);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn vgb_covers_blocks(funcs in arb_cluster(), blocks in 1u64..64, b in 16u64..128) {
        let n = blocks * b;
        let d = variable_group_block(n, b, &funcs, &ModifiedPartitioner::new()).unwrap();
        prop_assert_eq!(d.total_blocks() as u64, blocks);
        prop_assert!(d.block_owner.iter().all(|&o| o < funcs.len()));
    }

    #[test]
    fn fine_tune_never_leaves_bottleneck_improvable(
        funcs in arb_cluster(),
        n in 10u64..1_000_000,
    ) {
        let r = BisectionPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert!(oracle::is_exchange_optimal(&r.distribution, &funcs, 1e-6));
    }

    #[test]
    fn secant_matches_oracle(funcs in arb_cluster(), n in 100u64..10_000_000) {
        use fpm_core::partition::SecantPartitioner;
        let r = SecantPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert_eq!(r.distribution.total(), n);
        let o = oracle::solve(n, &funcs).unwrap();
        let rel = (r.makespan - o.makespan).abs() / o.makespan.max(1e-30);
        prop_assert!(rel < 1e-2, "{} vs {}", r.makespan, o.makespan);
    }

    #[test]
    fn contiguous_unit_weights_match_set_partition(
        funcs in arb_cluster(),
        n in 100usize..50_000,
    ) {
        use fpm_core::partition::partition_contiguous;
        let weights = vec![1.0; n];
        let contiguous = partition_contiguous(&weights, &funcs).unwrap();
        let (_, t_free) = oracle::solve_real(n as u64, &funcs).unwrap();
        // Contiguity with unit weights costs at most the granularity of a
        // couple of items per processor.
        prop_assert!(contiguous.makespan >= t_free - 1e-6);
        let slack: f64 = funcs
            .iter()
            .map(|f| SpeedFunction::time(f, 2.0))
            .fold(0.0, f64::max);
        prop_assert!(
            contiguous.makespan <= t_free + slack + t_free * 0.05,
            "contiguous {} vs real optimum {}",
            contiguous.makespan,
            t_free
        );
    }

    #[test]
    fn contiguous_boundaries_cover_and_order(
        funcs in arb_cluster(),
        weights in prop::collection::vec(0.0f64..100.0, 1..500),
    ) {
        use fpm_core::partition::partition_contiguous;
        let part = partition_contiguous(&weights, &funcs).unwrap();
        prop_assert_eq!(part.boundaries.len(), funcs.len() + 1);
        prop_assert_eq!(part.boundaries[0], 0);
        prop_assert_eq!(*part.boundaries.last().unwrap(), weights.len());
        prop_assert!(part.boundaries.windows(2).all(|w| w[0] <= w[1]));
        let total: f64 = part.loads.iter().sum();
        let expected: f64 = weights.iter().sum();
        prop_assert!((total - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn hierarchical_models_partition_cleanly(
        sustained in 20.0f64..300.0,
        l1 in 1e3f64..1e4,
        boost in 0.0f64..2.0,
        n in 1_000u64..10_000_000,
    ) {
        use fpm_core::speed::{HierarchicalSpeed, MemoryLevel};
        let f = HierarchicalSpeed::new(
            sustained,
            256.0,
            vec![
                MemoryLevel::new(l1, boost, 4.0),
                MemoryLevel::new(l1 * 16.0, boost / 2.0, 4.0),
            ],
            Some(l1 * 1e4),
        )
        .unwrap();
        prop_assert!(
            fpm_core::speed::check_single_intersection(&f, 16.0, l1 * 2e4, 200).is_ok()
        );
        let funcs = vec![f, HierarchicalSpeed::new(
            sustained * 0.5,
            256.0,
            vec![MemoryLevel::new(l1 * 2.0, boost, 4.0)],
            None,
        ).unwrap()];
        let r = CombinedPartitioner::new().partition(n, &funcs).unwrap();
        prop_assert_eq!(r.distribution.total(), n);
    }
}
