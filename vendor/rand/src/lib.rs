//! Offline vendored shim of the `rand` 0.8 API surface used by this
//! workspace: [`RngCore`], [`SeedableRng`], and [`Rng::gen_range`] over the
//! primitive range types. The build container has no registry access, so
//! the workspace patches `rand` to this crate; the generators live in the
//! sibling `rand_chacha` shim.
//!
//! The sampling here is uniform but does **not** reproduce upstream rand's
//! bit streams — everything in the workspace that depends on randomness is
//! seeded and only relies on determinism, not on specific sequences.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by an RNG.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range requires a non-empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods on top of [`RngCore`], blanket-implemented.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` namespace for API compatibility.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let m = rng.gen_range(400u32..=3000);
            assert!((400..=3000).contains(&m));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
