//! Discrete-event simulation of a run on a contended interconnect.
//!
//! The closed-form model in [`crate::comm`] charges *all* communication
//! before any computation starts. On the paper's actual network — switched
//! 100 Mbit Ethernet where it is "desirable to schedule a parallel program
//! in such a way that only one processor sends a message at a given time"
//! — a worker can start computing as soon as *its own* data has arrived,
//! overlapping with the transfers still being serialised for the others.
//!
//! This module provides a small resource-timeline simulator (per-processor
//! timelines plus one shared bus) and a DES-backed run of the striped
//! matrix multiplication, including the *serve-order* scheduling decision
//! the overlap makes relevant: serving the workers with the longest
//! computation first minimises the makespan (a classic result the
//! simulation reproduces).

use fpm_core::error::{Error, Result};
use fpm_core::partition::Distribution;
use fpm_core::speed::SpeedFunction;

use crate::comm::CommLink;

/// A resource-timeline simulator: one timeline per processor plus a shared
/// serialised bus. Operations must be submitted in causal order.
#[derive(Debug, Clone)]
pub struct Timeline {
    proc_free: Vec<f64>,
    bus_free: f64,
    bus_busy_total: f64,
}

impl Timeline {
    /// Creates timelines for `p` processors, all free at time zero.
    pub fn new(p: usize) -> Self {
        Self { proc_free: vec![0.0; p], bus_free: 0.0, bus_busy_total: 0.0 }
    }

    /// Schedules `seconds` of computation on processor `p`; returns the
    /// completion time.
    pub fn compute(&mut self, p: usize, seconds: f64) -> f64 {
        assert!(seconds >= 0.0);
        let start = self.proc_free[p];
        self.proc_free[p] = start + seconds;
        self.proc_free[p]
    }

    /// Schedules a bus transfer from `src` to `dst` taking `seconds`. The
    /// bus and the *sender* are occupied; the receiver is passive (DMA
    /// semantics) but cannot use the data before the transfer completes,
    /// so its timeline is advanced to at least the completion time.
    /// Returns the completion time.
    pub fn transfer(&mut self, src: usize, dst: usize, seconds: f64) -> f64 {
        assert!(seconds >= 0.0);
        let start = self.bus_free.max(self.proc_free[src]);
        let end = start + seconds;
        self.bus_free = end;
        self.proc_free[src] = end;
        self.proc_free[dst] = self.proc_free[dst].max(end);
        self.bus_busy_total += seconds;
        end
    }

    /// Time at which everything has finished.
    pub fn makespan(&self) -> f64 {
        self.proc_free.iter().cloned().fold(self.bus_free, f64::max)
    }

    /// Total time the bus spent transferring.
    pub fn bus_busy(&self) -> f64 {
        self.bus_busy_total
    }

    /// Completion time of processor `p`.
    pub fn finish_of(&self, p: usize) -> f64 {
        self.proc_free[p]
    }
}

/// In which order the master serves the workers' input transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOrder {
    /// Processor index order.
    AsGiven,
    /// Workers with the longest computation receive their data first —
    /// the makespan-minimising heuristic once transfers overlap compute.
    LongestComputeFirst,
    /// The adversarial order, for contrast.
    ShortestComputeFirst,
}

/// Outcome of a DES-backed striped-MM run.
#[derive(Debug, Clone)]
pub struct DesOutcome {
    /// Total wall-clock makespan (scatter + overlapped compute + gather).
    pub makespan: f64,
    /// Total bus occupancy.
    pub bus_seconds: f64,
    /// Per-processor completion time of the compute phase.
    pub compute_finish: Vec<f64>,
}

/// Runs the striped `C = A×Bᵀ` through the timeline simulator: the master
/// (processor 0, which also computes) serialises the input transfers in
/// the chosen order; every worker computes as soon as its data arrives;
/// the result stripes are gathered afterwards, again serialised.
pub fn simulate_mm_des<F: SpeedFunction>(
    n: u64,
    funcs: &[F],
    links: &[CommLink],
    distribution: &Distribution,
    order: ServeOrder,
) -> Result<DesOutcome> {
    if funcs.is_empty() {
        return Err(Error::NoProcessors);
    }
    assert_eq!(funcs.len(), links.len());
    assert_eq!(funcs.len(), distribution.len());
    let p = funcs.len();
    let counts = distribution.counts();

    // Per-worker compute seconds (flop volume over speed at its size).
    let compute_secs: Vec<f64> = counts
        .iter()
        .zip(funcs)
        .map(|(&x, f)| {
            if x == 0 {
                return 0.0;
            }
            // A stripe of r rows (x = 3·r·n elements) does 2·r·n² flops.
            let flops = 2.0 / 3.0 * x as f64 * n as f64;
            let s = f.speed(x as f64);
            if s <= 0.0 {
                f64::INFINITY
            } else {
                flops / (s * 1e6)
            }
        })
        .collect();

    // Serve order over remote workers (everyone but the master).
    let mut serve: Vec<usize> = (1..p).filter(|&i| counts[i] > 0).collect();
    match order {
        ServeOrder::AsGiven => {}
        ServeOrder::LongestComputeFirst => {
            serve.sort_by(|&a, &b| compute_secs[b].total_cmp(&compute_secs[a]))
        }
        ServeOrder::ShortestComputeFirst => {
            serve.sort_by(|&a, &b| compute_secs[a].total_cmp(&compute_secs[b]))
        }
    }

    let mut tl = Timeline::new(p);
    // Scatter: A stripe (x/3) plus the full B matrix (n²) per worker.
    for &i in &serve {
        let elements = counts[i] as f64 / 3.0 + (n * n) as f64;
        tl.transfer(0, i, links[i].transfer_time(elements));
    }
    // Compute (the master computes its own stripe too, after it finished
    // sending).
    let mut compute_finish = vec![0.0; p];
    for i in 0..p {
        if counts[i] > 0 {
            compute_finish[i] = tl.compute(i, compute_secs[i]);
        }
    }
    // Gather the C stripes (x/3 elements each), serialised on the bus in
    // completion order (workers send their results as they finish).
    let mut gather_order = serve.clone();
    gather_order.sort_by(|&a, &b| compute_finish[a].total_cmp(&compute_finish[b]));
    for &i in &gather_order {
        let elements = counts[i] as f64 / 3.0;
        tl.transfer(i, 0, links[i].transfer_time(elements));
    }
    Ok(DesOutcome { makespan: tl.makespan(), bus_seconds: tl.bus_busy(), compute_finish })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_core::partition::{CombinedPartitioner, Partitioner};
    use fpm_core::speed::ConstantSpeed;

    fn links(p: usize) -> Vec<CommLink> {
        vec![CommLink::new(0.5, 1e6); p]
    }

    #[test]
    fn timeline_compute_accumulates() {
        let mut tl = Timeline::new(2);
        assert_eq!(tl.compute(0, 2.0), 2.0);
        assert_eq!(tl.compute(0, 3.0), 5.0);
        assert_eq!(tl.compute(1, 1.0), 1.0);
        assert_eq!(tl.makespan(), 5.0);
    }

    #[test]
    fn timeline_bus_serialises() {
        let mut tl = Timeline::new(3);
        let t1 = tl.transfer(0, 1, 2.0);
        let t2 = tl.transfer(0, 2, 2.0);
        assert_eq!(t1, 2.0);
        assert_eq!(t2, 4.0, "second transfer waits for the bus");
        assert_eq!(tl.bus_busy(), 4.0);
    }

    #[test]
    fn transfers_overlap_with_unrelated_compute() {
        let mut tl = Timeline::new(3);
        tl.transfer(0, 1, 2.0); // bus busy 0–2
        tl.compute(1, 10.0); // proc 1 computes 2–12
        let t = tl.transfer(0, 2, 2.0); // bus free at 2, proc 0 free at 2
        assert_eq!(t, 4.0, "proc 2's data arrives while proc 1 computes");
        assert_eq!(tl.finish_of(1), 12.0);
    }

    #[test]
    fn des_makespan_is_at_most_fully_serialised_model() {
        let funcs: Vec<ConstantSpeed> =
            vec![ConstantSpeed::new(100.0), ConstantSpeed::new(50.0), ConstantSpeed::new(25.0)];
        let n = 300u64;
        let dist = CombinedPartitioner::new().partition(3 * n * n, &funcs).unwrap().distribution;
        let des = simulate_mm_des(n, &funcs, &links(3), &dist, ServeOrder::LongestComputeFirst)
            .unwrap();
        // Fully serialised: all comm then max compute.
        let (comm, compute) =
            crate::comm::evaluate_mm_with_comm(n, &funcs, &links(3), &dist);
        assert!(
            des.makespan <= comm + compute + 1e-9,
            "DES {} vs serialised {}",
            des.makespan,
            comm + compute
        );
    }

    #[test]
    fn longest_first_beats_shortest_first() {
        // Strongly heterogeneous computation times make the serve order
        // matter: the long job should be fed first.
        let funcs: Vec<ConstantSpeed> =
            vec![ConstantSpeed::new(1e6), ConstantSpeed::new(2.0), ConstantSpeed::new(2000.0)];
        let n = 200u64;
        let dist = Distribution::new(vec![20_000, 80_000, 20_000]);
        let l = links(3);
        let long =
            simulate_mm_des(n, &funcs, &l, &dist, ServeOrder::LongestComputeFirst).unwrap();
        let short =
            simulate_mm_des(n, &funcs, &l, &dist, ServeOrder::ShortestComputeFirst).unwrap();
        assert!(
            long.makespan <= short.makespan,
            "longest-first {} vs shortest-first {}",
            long.makespan,
            short.makespan
        );
    }

    #[test]
    fn idle_workers_cost_nothing() {
        let funcs: Vec<ConstantSpeed> =
            vec![ConstantSpeed::new(100.0), ConstantSpeed::new(100.0)];
        let n = 100u64;
        let dist = Distribution::new(vec![3 * 100 * 100, 0]);
        let des =
            simulate_mm_des(n, &funcs, &links(2), &dist, ServeOrder::AsGiven).unwrap();
        assert_eq!(des.bus_seconds, 0.0, "no transfers when only the master works");
    }

    #[test]
    fn empty_cluster_errors() {
        let funcs: Vec<ConstantSpeed> = vec![];
        let l: Vec<CommLink> = vec![];
        let dist = Distribution::new(vec![]);
        assert!(matches!(
            simulate_mm_des(10, &funcs, &l, &dist, ServeOrder::AsGiven),
            Err(Error::NoProcessors)
        ));
    }
}
