//! Figs. 14, 19, 20: building the piece-wise linear approximation of a
//! speed band by adaptive trisection with a ±5 % acceptance band.

use fpm_core::speed::builder::{build_speed_band, BuilderConfig};
use fpm_core::speed::SpeedFunction;
use fpm_simnet::fluctuation::{FluctuatingMeasurer, Integration};
use fpm_simnet::profile::AppProfile;
use fpm_simnet::speed_model::MachineSpeed;
use fpm_simnet::testbeds;

use crate::report::{fnum, Report};

/// Builds models for every Table 2 machine and reports point counts,
/// costs and approximation accuracy.
pub fn run() -> Report {
    let specs = testbeds::table2();
    let mut r = Report::new(
        "fig20",
        "Piece-wise linear model building by trisection (paper Figs. 14/19/20)",
        &["machine", "measurements", "knots", "cost (norm.)", "max rel err pre-paging (%)"],
    );
    for (i, spec) in specs.iter().enumerate() {
        let truth = MachineSpeed::for_app(spec, AppProfile::MatrixMult);
        let (a, b) = truth.model_interval();
        let mut measurer = FluctuatingMeasurer::new(
            truth.clone(),
            Integration::Low.width_law(b),
            0x20 + i as u64,
        );
        let out = build_speed_band(&mut measurer, a, b, BuilderConfig::default()).unwrap();
        // Accuracy over the pre-paging range, where partitioning decisions
        // live.
        let mut max_err = 0.0f64;
        for k in 1..60 {
            let x = a + (truth.paging_point() - a) * k as f64 / 60.0;
            let t = truth.speed(x);
            if t > 0.0 {
                max_err = max_err.max((out.midline.speed(x) - t).abs() / t);
            }
        }
        r.push_row(vec![
            spec.name.clone(),
            out.measurements.to_string(),
            out.midline.len().to_string(),
            fnum(out.cost_seconds, 1),
            fnum(max_err * 100.0, 1),
        ]);
    }
    r.note("paper: '5 experimental points appeared enough to build the functions' on the real testbed; the synthetic curves have sharper knees and may need more");
    r.note("expected: tens of points at most; pre-paging accuracy within ~2× the ±5 % acceptance band");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_machines_build_successfully() {
        let r = run();
        assert_eq!(r.rows.len(), 12);
    }

    #[test]
    fn point_counts_are_frugal_and_errors_bounded() {
        let r = run();
        for row in &r.rows {
            let points: usize = row[1].parse().unwrap();
            assert!(points <= 64, "{}: {points} points", row[0]);
            let err: f64 = row[4].parse().unwrap();
            assert!(err < 35.0, "{}: {err} % error", row[0]);
        }
    }
}
