//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! The workspace policy is vendored-offline / std-only, so the protocol
//! cannot lean on serde. This module implements exactly the subset the
//! daemon needs, hardened for untrusted input:
//!
//! * a recursive-descent parser with a **nesting-depth cap** (frames are
//!   already length-capped by the server's line reader), returning
//!   positioned errors instead of panicking on any byte sequence;
//! * strict number grammar — `NaN`, `inf`, hex floats and other
//!   `f64::from_str` extensions are rejected, as JSON requires;
//! * a writer whose float formatting is Rust's shortest-round-trip
//!   `Display`, so `f64` values survive a serialize → parse round trip
//!   **bit-exactly** (the serve conformance tests depend on this);
//!   non-finite floats are refused at construction.
//!
//! There are two value types over one grammar implementation:
//! [`JsonRef`], a **borrowing** parse tree whose strings are `Cow` slices
//! of the input (escape-free strings — the overwhelmingly common case on
//! the wire — cost zero copies), and the owned [`Json`], produced by
//! deep-copying a `JsonRef`. The server's hot request path stays on
//! `JsonRef` so a warm cache hit allocates nothing for the request
//! strings.
//!
//! Objects preserve insertion order (association list, not a hash map):
//! responses are byte-deterministic given the same inputs.

use std::borrow::Cow;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Always finite (construction via [`Json::num`] enforces
    /// it; the parser cannot produce non-finite values from valid JSON
    /// except via overflow, which is rejected).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A positioned parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A finite number. Panics on NaN/∞ — the daemon never has a reason to
    /// emit one, and JSON cannot represent them.
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite");
        Json::Num(v)
    }

    /// An unsigned integer, exact up to 2⁵³ (the protocol caps `n` well
    /// below that).
    pub fn uint(v: u64) -> Json {
        debug_assert!(v <= (1u64 << 53), "u64 above 2^53 loses precision in JSON");
        Json::Num(v as f64)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractional parts and
    /// anything above 2⁵³ (where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= (1u64 << 53) as f64 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error (one frame per line, nothing may ride along).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        Json::parse_ref(input).map(|v| v.to_json())
    }

    /// Parses one complete JSON document into the **borrowing** tree: all
    /// escape-free strings are zero-copy slices of `input`. Same grammar,
    /// same errors as [`Json::parse`] (which is implemented on top of
    /// this).
    pub fn parse_ref(input: &str) -> Result<JsonRef<'_>, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { input, bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// A borrowed JSON value: the zero-copy twin of [`Json`].
///
/// Strings are [`Cow`]: borrowed slices of the parser input when the
/// string contains no escapes, owned only when unescaping was required.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonRef<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string (borrowed unless it contained escapes).
    Str(Cow<'a, str>),
    /// An array.
    Arr(Vec<JsonRef<'a>>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(Cow<'a, str>, JsonRef<'a>)>),
}

impl<'a> JsonRef<'a> {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonRef<'a>> {
        match self {
            JsonRef::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonRef::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractional parts
    /// and anything above 2⁵³ (same rule as [`Json::as_u64`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonRef::Num(v) if *v >= 0.0 && *v <= (1u64 << 53) as f64 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonRef::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonRef<'a>]> {
        match self {
            JsonRef::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Deep copy into the owned tree.
    pub fn to_json(&self) -> Json {
        match self {
            JsonRef::Null => Json::Null,
            JsonRef::Bool(b) => Json::Bool(*b),
            JsonRef::Num(v) => Json::Num(*v),
            JsonRef::Str(s) => Json::Str(s.clone().into_owned()),
            JsonRef::Arr(items) => Json::Arr(items.iter().map(JsonRef::to_json).collect()),
            JsonRef::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone().into_owned(), v.to_json()))
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for JsonRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonRef::Null => f.write_str("null"),
            JsonRef::Bool(true) => f.write_str("true"),
            JsonRef::Bool(false) => f.write_str("false"),
            JsonRef::Num(v) => write_num(f, *v),
            JsonRef::Str(s) => write_escaped(f, s),
            JsonRef::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonRef::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Display adapter: renders a string slice as a quoted, escaped JSON
/// string. The server's response writer uses it to emit wire-format
/// strings straight into a reused buffer without building a
/// [`Json::Str`] (which would copy the data first).
pub struct JsonStr<'a>(pub &'a str);

impl fmt::Display for JsonStr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_escaped(f, self.0)
    }
}

/// Display adapter: renders a finite `f64` in the wire number format
/// (exactly as [`Json::Num`] renders).
pub struct JsonNum(pub f64);

impl fmt::Display for JsonNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_num(f, self.0)
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { at: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonRef::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonRef::Bool(true)),
            Some(b'f') => self.literal("false", JsonRef::Bool(false)),
            Some(b'n') => self.literal("null", JsonRef::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(
        &mut self,
        text: &'static str,
        value: JsonRef<'a>,
    ) -> Result<JsonRef<'a>, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonRef::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonRef::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonRef::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonRef::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<Cow<'a, str>, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        // Zero-copy fast path: scan for the closing quote; any escape or
        // control byte bails to the general (allocating) path below. The
        // scanned prefix never splits a UTF-8 sequence because `"`, `\`
        // and control bytes are all ASCII.
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    let s = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\' | 0x00..=0x1F) => break,
                Some(_) => self.pos += 1,
            }
        }
        let mut out = String::with_capacity(self.pos - start + 16);
        out.push_str(&self.input[start..self.pos]);
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(Cow::Owned(out)),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00..DFFF; lone surrogates
                            // are replaced (never panic on bad input).
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(c).unwrap_or('\u{FFFD}'),
                                        );
                                    } else {
                                        out.push('\u{FFFD}');
                                        out.push(
                                            char::from_u32(lo).unwrap_or('\u{FFFD}'),
                                        );
                                    }
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 character starting at pos-1. The
                    // input is a &str so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonRef<'a>, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(JsonRef::Num(v))
    }
}

/// Width in bytes of the UTF-8 character starting with `first`.
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Renders one finite `f64` the way the wire format requires: sign-aware
/// zero, integral values without a trailing `.0`, everything else via
/// Rust's shortest-round-trip `Display`. Shared by [`Json`] and
/// [`JsonRef`] so both trees serialize identically.
fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // Unreachable through the public constructors; keep the
        // output valid JSON regardless.
        return f.write_str("null");
    }
    if v == 0.0 {
        // Preserve the sign bit: "-0" parses back to -0.0.
        f.write_str(if v.is_sign_negative() { "-0" } else { "0" })
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral values print without the ".0" Rust adds.
        write!(f, "{}", v as i64)
    } else {
        // Rust's float Display is shortest-round-trip.
        write!(f, "{v}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_json_extensions() {
        for bad in ["NaN", "inf", "Infinity", "+1", "01", ".5", "1.", "1e", "0x10", "'s'"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("{\"a\":1").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert_eq!(e.message, "nesting too deep");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    #[allow(clippy::excessive_precision)] // deliberate: non-representable literal
    fn floats_round_trip_bit_exactly() {
        for &v in &[
            0.0,
            -0.0,
            1.0 / 3.0,
            6.062462316241271e22,
            f64::MIN_POSITIVE,
            1e-300,
            123456789.123456789,
            2f64.powi(53),
        ] {
            let text = Json::num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} → {text} → {back}");
        }
    }

    #[test]
    fn u64_round_trips_exactly_below_2_53() {
        for &v in &[0u64, 1, 999_999_999_999, 1u64 << 53] {
            let text = Json::uint(v).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
        }
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t unicode π control\u{0001}";
        let text = Json::str(nasty).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // Lone surrogate is replaced, not a panic.
        assert_eq!(Json::parse(r#""\ud800""#).unwrap().as_str(), Some("\u{FFFD}"));
    }

    #[test]
    fn object_output_is_deterministic() {
        let obj = Json::Obj(vec![
            ("b".into(), Json::uint(2)),
            ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(obj.to_string(), r#"{"b":2,"a":[true,null]}"#);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_are_refused() {
        let _ = Json::num(f64::NAN);
    }

    #[test]
    fn ref_parser_borrows_escape_free_strings() {
        let line = r#"{"verb":"partition","cluster":"c1","esc":"a\nb"}"#;
        let v = Json::parse_ref(line).unwrap();
        let JsonRef::Obj(fields) = &v else { panic!("not an object") };
        assert!(
            matches!(&fields[0].1, JsonRef::Str(Cow::Borrowed("partition"))),
            "escape-free strings must borrow from the input"
        );
        assert!(
            matches!(&fields[2].1, JsonRef::Str(Cow::Owned(_))),
            "escaped strings must unescape into owned storage"
        );
        assert_eq!(v.get("esc").unwrap().as_str(), Some("a\nb"));
        assert_eq!(v.to_json(), Json::parse(line).unwrap());
    }

    #[test]
    fn ref_and_owned_trees_agree_on_grammar_and_rendering() {
        let cases = [
            r#"{"id":7,"verb":"ping"}"#,
            r#"[1,-0.5,"x",null,true,{"k":[]}]"#,
            r#""π A""#,
            "123456789.123456789",
        ];
        for line in cases {
            let r = Json::parse_ref(line).unwrap();
            let o = Json::parse(line).unwrap();
            assert_eq!(r.to_json(), o, "{line}");
            assert_eq!(r.to_string(), o.to_string(), "{line}");
        }
        for bad in ["{", "NaN", "[1,", "\"\\ud800", "{}x"] {
            let re = Json::parse_ref(bad).unwrap_err();
            let oe = Json::parse(bad).unwrap_err();
            assert_eq!(re, oe, "{bad}");
        }
        // JsonRef accessors mirror Json's.
        let v = Json::parse_ref(r#"{"n":42,"b":false,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonRef::as_u64), Some(42));
        assert_eq!(v.get("n").and_then(JsonRef::as_f64), Some(42.0));
        assert_eq!(v.get("b").and_then(JsonRef::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(JsonRef::as_array).map(<[_]>::len), Some(1));
    }
}
