//! Memoizing wrapper for cost functions — the per-run cache the solvers
//! wrap every model in.

use std::cell::{Cell, RefCell};

use super::function::CostFunction;
use crate::speed::BitsMap;

/// A [`CostFunction`] decorator that memoizes `time(x)` and
/// `throughput(x)` per abscissa.
///
/// The cost-domain successor of [`crate::speed::CachedSpeed`]: the
/// partitioners probe each processor at the same abscissas many times
/// over (bracket shrinking re-evaluates intersections, the fine-tuning
/// heap queries `time()` at the same `2p` integer candidates
/// repeatedly), so each distinct abscissa is computed once and replayed.
/// Keys are the raw IEEE-754 bits of `x`, and the replayed value *is*
/// the inner function's output, so memoization is bit-invisible.
///
/// Two independent channels are kept — one for `time`, one for
/// `throughput` — because a cost model's two views are separate
/// computations: caching one as a derived form of the other would
/// change the floating-point path for speed-backed models (whose
/// `throughput` is the raw `speed(x)`, not `x / time(x)`). The derived
/// [`rate`](CostFunction::rate) is left to the default
/// `throughput(x) / x`, exactly as the speed-domain solver computed it.
///
/// Borrows its inner function (`&F`), matching how solvers build one
/// wrapper per processor per run over a caller-owned slice.
///
/// Like `CachedSpeed`, this wrapper is deliberately **not** `Sync`
/// (single-threaded `RefCell` interior, one wrapper per solver run):
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<fpm_core::cost::CachedCost<'static, fpm_core::speed::ConstantSpeed>>();
/// ```
#[derive(Debug)]
pub struct CachedCost<'a, F: ?Sized> {
    inner: &'a F,
    times: RefCell<BitsMap>,
    throughputs: RefCell<BitsMap>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a, F: CostFunction + ?Sized> CachedCost<'a, F> {
    /// Wraps `inner` with empty caches.
    pub fn new(inner: &'a F) -> Self {
        Self {
            inner,
            times: RefCell::new(BitsMap::default()),
            throughputs: RefCell::new(BitsMap::default()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        self.inner
    }

    /// Number of probes (either channel) answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of probes that had to evaluate the inner function.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops all memoized entries and resets the counters.
    pub fn clear(&self) {
        self.times.borrow_mut().clear();
        self.throughputs.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }
}

impl<F: CostFunction + ?Sized> CostFunction for CachedCost<'_, F> {
    fn time(&self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&t) = self.times.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return t;
        }
        let t = self.inner.time(x);
        self.misses.set(self.misses.get() + 1);
        self.times.borrow_mut().insert(key, t);
        t
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }

    fn throughput(&self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&s) = self.throughputs.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return s;
        }
        let s = self.inner.throughput(x);
        self.misses.set(self.misses.get() + 1);
        self.throughputs.borrow_mut().insert(key, s);
        s
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        self.inner.intersect_slope(slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, CachedSpeed, PiecewiseLinearSpeed, SpeedFunction};

    #[test]
    fn caches_repeated_probes_per_channel() {
        let inner = AnalyticSpeed::decreasing(200.0, 1e6, 2.0);
        let f = CachedCost::new(&inner);
        let a = f.time(1234.5);
        let b = f.time(1234.5);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(f.misses(), 1);
        assert_eq!(f.hits(), 1);
        // The throughput channel is independent: same abscissa misses once.
        let s1 = f.throughput(1234.5);
        let s2 = f.throughput(1234.5);
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(f.misses(), 2);
        assert_eq!(f.hits(), 2);
    }

    #[test]
    fn replays_speed_backed_models_bit_identically_to_cached_speed() {
        let inner = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        let legacy = CachedSpeed::new(inner.clone());
        let cost = CachedCost::new(&inner);
        for k in 0..200 {
            let x = 10f64.powf(k as f64 * 0.04);
            assert_eq!(cost.throughput(x).to_bits(), legacy.speed(x).to_bits());
            assert_eq!(cost.rate(x).to_bits(), (legacy.speed(x) / x).to_bits());
            assert_eq!(
                cost.time(x).to_bits(),
                SpeedFunction::time(&legacy, x).to_bits()
            );
        }
    }

    #[test]
    fn forwards_structure_queries() {
        let inner = PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (1000.0, 50.0)]).unwrap();
        let f = CachedCost::new(&inner);
        assert_eq!(
            CostFunction::max_size(&f),
            SpeedFunction::max_size(&inner)
        );
        assert_eq!(
            CostFunction::intersect_slope(&f, 1e-3),
            SpeedFunction::intersect_slope(&inner, 1e-3)
        );
    }

    #[test]
    fn clear_resets_counters() {
        let inner = AnalyticSpeed::constant(10.0);
        let f = CachedCost::new(&inner);
        let _ = f.time(1.0);
        let _ = f.throughput(1.0);
        f.clear();
        assert_eq!(f.hits(), 0);
        assert_eq!(f.misses(), 0);
        let _ = f.time(1.0);
        assert_eq!(f.misses(), 1);
    }

    #[test]
    fn wraps_erased_cost_objects() {
        let inner = AnalyticSpeed::constant(10.0);
        let erased: &dyn CostFunction = &inner;
        let f = CachedCost::new(erased);
        assert_eq!(f.time(5.0).to_bits(), CostFunction::time(&inner, 5.0).to_bits());
    }
}
