//! # fpm-kernels — dense linear-algebra substrate
//!
//! The paper demonstrates its partitioning algorithms on two applications:
//! matrix multiplication `C = A×Bᵀ` with horizontal striped partitioning
//! (Fig. 16) and LU factorisation with the Variable Group Block
//! distribution (Fig. 17). This crate implements those kernels and
//! distribution schemes from scratch:
//!
//! * [`matrix`] — a row-major dense matrix type;
//! * [`matmul`] — serial naive and blocked multiplication, including the
//!   non-square shapes used to estimate processor speeds (Table 3);
//! * [`lu`] — serial right-looking blocked LU factorisation (Table 4);
//! * [`striped`] — horizontal striped partitioning and the real
//!   multi-threaded parallel multiplication built on it;
//! * [`vgb`] — the Variable Group Block distribution for parallel LU;
//! * [`sample_sort`] — a heterogeneous parallel sample sort whose phases
//!   follow a plan from the cost-model (`x·log x`) solver path, the
//!   kernel behind the planner's `sort-sample` entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_lu;
pub mod lu;
pub mod matmul;
pub mod matrix;
pub mod sample_sort;
pub mod striped;
pub mod vgb;

pub use block_lu::{parallel_lu, BlockMatrix};
pub use matrix::Matrix;
pub use sample_sort::parallel_sample_sort;
pub use striped::{rows_from_element_distribution, StripedLayout};
pub use vgb::{variable_group_block, variable_group_block_with, VgbDistribution, VgbGroup, VgbStrategy};
