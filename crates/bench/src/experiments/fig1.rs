//! Fig. 1: the effect of caching and paging on the speed of the three
//! motivating applications across the Table 1 machines.
//!
//! Expected shape: ArrayOpsF and MatrixMultATLAS show flat plateaus with a
//! sharp drop at the paging point *P*; naive MatrixMult declines smoothly
//! from small sizes; faster machines sit higher; each machine's *P*
//! reflects its memory size.

use fpm_core::speed::SpeedFunction;
use fpm_simnet::profile::AppProfile;
use fpm_simnet::speed_model::MachineSpeed;
use fpm_simnet::testbeds;
use fpm_simnet::workload;

use crate::report::{fnum, Report};

/// Runs the speed sweeps for the three applications of Fig. 1.
pub fn run() -> Report {
    let specs = testbeds::table1();
    let apps =
        [AppProfile::ArrayOpsF, AppProfile::MatrixMultAtlas, AppProfile::MatrixMult];
    let mut r = Report::new(
        "fig1",
        "Speed vs problem size per application and machine (paper Fig. 1)",
        &["application", "machine", "matrix dim n", "elements", "speed (MFlops)", "paging?"],
    );
    for app in apps {
        for spec in &specs {
            let model = MachineSpeed::for_app(spec, app);
            let page = model.paging_point();
            // Sweep matrix dimensions on a grid covering cache → paging.
            for k in 1..=16u32 {
                let frac = k as f64 / 12.0; // extends past the paging point
                let elements = page * frac;
                let n = workload::mm_dimension(elements);
                r.push_row(vec![
                    app.name().to_owned(),
                    spec.name.clone(),
                    fnum(n, 0),
                    fnum(elements, 0),
                    fnum(model.speed(elements), 1),
                    if elements > page { "yes".into() } else { String::new() },
                ]);
            }
        }
    }
    r.note("P (paging start) is where the 'paging?' column flips to yes");
    r.note(
        "expected: ArrayOpsF/ATLAS flat until P then collapse; naive MatrixMult \
         declines smoothly from small sizes (paper Fig. 1a-c)",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_for_all_combinations() {
        let r = run();
        assert_eq!(r.rows.len(), 3 * 4 * 16);
    }

    #[test]
    fn naive_mm_declines_before_paging_while_atlas_is_flat() {
        // Compare speed at 1/12 and 8/12 of the paging point for Comp1.
        let specs = testbeds::table1();
        let atlas = MachineSpeed::for_app(&specs[0], AppProfile::MatrixMultAtlas);
        let naive = MachineSpeed::for_app(&specs[0], AppProfile::MatrixMult);
        let p = atlas.paging_point();
        let atlas_drop = atlas.speed(p * 8.0 / 12.0) / atlas.speed(p / 12.0);
        let naive_drop = naive.speed(p * 8.0 / 12.0) / naive.speed(p / 12.0);
        assert!(atlas_drop > 0.9, "ATLAS stays flat: {atlas_drop}");
        assert!(naive_drop < atlas_drop, "naive declines more: {naive_drop}");
    }

    #[test]
    fn speed_collapses_past_paging_point() {
        let specs = testbeds::table1();
        for app in [AppProfile::ArrayOpsF, AppProfile::MatrixMultAtlas] {
            let m = MachineSpeed::for_app(&specs[3], app);
            let p = m.paging_point();
            assert!(
                m.speed(p * 1.3) < 0.6 * m.speed(p * 0.9),
                "{}: paging must bite",
                app.name()
            );
        }
    }
}
