//! The modified algorithm: bisection of the space of solutions
//! (paper §2, Figs. 10–12).
//!
//! Where the basic algorithm shrinks the *region between two lines*, the
//! modified algorithm shrinks the discrete **space of candidate solutions**
//! — the set of origin lines passing through at least one integer-abscissa
//! point of some processor graph. At each step it:
//!
//! 1. finds the processor whose graph is intersected by the largest number
//!    of candidate lines inside the current region (the graph with the most
//!    integer abscissas between its two bounding intersections);
//! 2. draws the line through that graph's *median* integer point, splitting
//!    those candidates in half;
//! 3. keeps the half containing the optimum (by comparing the trial line's
//!    element total with `n`).
//!
//! After `p` such bisections the candidate count provably drops by at least
//! 50 %, so at most `p·log₂ n` steps are needed; with `O(p)` work per step
//! the complexity is `O(p²·log₂ n)` **independent of the shapes of the
//! graphs** — unlike the basic algorithm, which is shape-sensitive.

use super::fine_tune::fine_tune;
use super::initial::{bracket_from_slope, bracket_slopes, SlopeBracket};
use super::problem::{
    empty_report, seed_slope, validate_processors, Distribution, PartitionReport, Partitioner,
};
use crate::error::{Error, Result};
use crate::geometry::intersections_at_slope;
use crate::cost::{CachedCost, CostFunction};
use crate::trace::{IterationRecord, Trace};

/// The solution-space bisection partitioner.
#[derive(Debug, Clone, Copy)]
pub struct ModifiedPartitioner {
    /// Hard step budget. The theoretical bound is `p·log₂ n`; the default
    /// budget is computed per problem as `4·p·log₂(n+2) + 64` when this
    /// field is `None`.
    pub max_steps: Option<usize>,
    /// Memoize model probes per run (see [`CachedCost`]). On by
    /// default; disable to measure the raw algorithm.
    pub eval_cache: bool,
}

impl Default for ModifiedPartitioner {
    fn default() -> Self {
        Self { max_steps: None, eval_cache: true }
    }
}

impl ModifiedPartitioner {
    /// Creates the partitioner with the per-problem default step budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        assert!(max_steps > 0);
        self.max_steps = Some(max_steps);
        self
    }

    /// Enables or disables the per-run model-evaluation cache.
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        self.eval_cache = enabled;
        self
    }

    fn budget(&self, n: u64, p: usize) -> usize {
        self.max_steps
            .unwrap_or_else(|| 4 * p * ((n + 2) as f64).log2().ceil() as usize + 64)
    }

    /// Runs the search from an explicit slope bracket (used by the combined
    /// algorithm).
    pub fn partition_from_bracket<F: CostFunction>(
        &self,
        n: u64,
        funcs: &[F],
        bracket: SlopeBracket,
        mut trace: Trace,
    ) -> Result<PartitionReport> {
        let target = n as f64;
        let mut shallow = bracket.shallow;
        let mut steep = bracket.steep;
        let budget = self.budget(n, funcs.len());
        // Bound intersections are cached across iterations: the updated
        // bound always inherits the trial line's abscissas.
        let mut hi_x = intersections_at_slope(funcs, shallow);
        let mut lo_x = intersections_at_slope(funcs, steep);

        for step in 1..=budget {

            // Candidate count per graph: integer abscissas strictly inside
            // the open interval (lo, hi). Work in f64: counts can reach n.
            let mut best_proc = usize::MAX;
            let mut best_count = 0.0_f64;
            let mut best_median = 0.0_f64;
            for (i, (&l, &h)) in lo_x.iter().zip(&hi_x).enumerate() {
                let first = (l + 1.0).floor(); // smallest integer > l
                let last = (h - 1.0).ceil().max(first - 1.0); // largest integer < h
                let count = (last - first + 1.0).max(0.0);
                if count > best_count {
                    best_count = count;
                    best_proc = i;
                    best_median = (first + ((count - 1.0) / 2.0).floor()).max(1.0);
                }
            }
            if best_proc == usize::MAX || steep - shallow <= f64::EPSILON * steep {
                // No candidate line remains inside the region: stop and
                // fine-tune (paper's stopping criterion).
                let distribution = fine_tune(n, funcs, &lo_x, &hi_x);
                return Ok(PartitionReport::from_distribution(distribution, funcs, trace));
            }

            // Line through the median integer point of the richest graph.
            let m = best_median;
            let trial = funcs[best_proc].rate(m);
            if !(trial > shallow && trial < steep) {
                // The candidate line coincides with a boundary — the region
                // cannot be split further along this graph; fall back to a
                // plain slope bisection step to keep making progress.
                let mid = 0.5 * (shallow + steep);
                if !(mid > shallow && mid < steep) {
                    let distribution = fine_tune(n, funcs, &lo_x, &hi_x);
                    return Ok(PartitionReport::from_distribution(distribution, funcs, trace));
                }
                let xs_mid = intersections_at_slope(funcs, mid);
                let total: f64 = xs_mid.iter().sum();
                let undershoot = total < target;
                trace.iterations.push(IterationRecord {
                    step,
                    lower_slope: shallow,
                    upper_slope: steep,
                    trial_slope: mid,
                    total_elements: total,
                    undershoot,
                });
                if undershoot {
                    steep = mid;
                    lo_x = xs_mid;
                } else {
                    shallow = mid;
                    hi_x = xs_mid;
                }
                continue;
            }

            let xs_trial = intersections_at_slope(funcs, trial);
            let total: f64 = xs_trial.iter().sum();
            let undershoot = total < target;
            trace.iterations.push(IterationRecord {
                step,
                lower_slope: shallow,
                upper_slope: steep,
                trial_slope: trial,
                total_elements: total,
                undershoot,
            });
            if undershoot {
                steep = trial;
                lo_x = xs_trial;
            } else {
                shallow = trial;
                hi_x = xs_trial;
            }
        }
        Err(Error::NoConvergence { algorithm: "solution-space bisection", steps: budget })
    }
}

impl Partitioner for ModifiedPartitioner {
    fn partition<F: CostFunction>(&self, n: u64, funcs: &[F]) -> Result<PartitionReport> {
        validate_processors(funcs)?;
        if n == 0 {
            return Ok(empty_report(funcs.len()));
        }
        if self.eval_cache {
            let cached: Vec<CachedCost<F>> = funcs.iter().map(CachedCost::new).collect();
            let bracket = bracket_slopes(n, &cached)?;
            self.partition_from_bracket(n, &cached, bracket, Trace::default())
        } else {
            let bracket = bracket_slopes(n, funcs)?;
            self.partition_from_bracket(n, funcs, bracket, Trace::default())
        }
    }

    fn resolve_from<F: CostFunction>(
        &self,
        prev: &Distribution,
        n: u64,
        funcs: &[F],
    ) -> Result<PartitionReport> {
        validate_processors(funcs)?;
        if n == 0 {
            return Ok(empty_report(funcs.len()));
        }
        let seed = match seed_slope(prev, funcs) {
            Some(s) => s,
            None => return self.partition(n, funcs),
        };
        // First-order rescale for the new size: the donor's slope balanced
        // `prev.total()` elements and the balanced total is inversely
        // proportional to the slope for locally flat graphs (exactly so for
        // constant speeds), so `seed·prev_total/n` centres the ε-bracket on
        // the expected optimum instead of on the donor's. `prev.total() > 0`
        // whenever the seed exists, and steeper-than-flat graphs only move
        // the optimum further in the same direction, which the bracket
        // widening covers.
        let seed = seed * (prev.total() as f64 / n as f64);
        if self.eval_cache {
            let cached: Vec<CachedCost<F>> = funcs.iter().map(CachedCost::new).collect();
            match bracket_from_slope(n, &cached, seed) {
                Ok(bracket) => {
                    let trace = Trace { warm_bracket: true, ..Trace::default() };
                    self.partition_from_bracket(n, &cached, bracket, trace)
                }
                Err(_) => {
                    let bracket = bracket_slopes(n, &cached)?;
                    self.partition_from_bracket(n, &cached, bracket, Trace::default())
                }
            }
        } else {
            match bracket_from_slope(n, funcs, seed) {
                Ok(bracket) => {
                    let trace = Trace { warm_bracket: true, ..Trace::default() };
                    self.partition_from_bracket(n, funcs, bracket, trace)
                }
                Err(_) => {
                    let bracket = bracket_slopes(n, funcs)?;
                    self.partition_from_bracket(n, funcs, bracket, Trace::default())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::BisectionPartitioner;
    use crate::speed::{AnalyticSpeed, ConstantSpeed};

    fn mixed_cluster() -> Vec<AnalyticSpeed> {
        vec![
            AnalyticSpeed::decreasing(200.0, 1e6, 2.0),
            AnalyticSpeed::saturating(150.0, 5e4),
            AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0),
            AnalyticSpeed::paging(300.0, 2e6, 3.0),
        ]
    }

    #[test]
    fn conserves_total() {
        let funcs = mixed_cluster();
        for n in [1u64, 17, 1000, 1_000_000, 123_456_789] {
            let r = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
            assert_eq!(r.distribution.total(), n, "n = {n}");
        }
    }

    #[test]
    fn agrees_with_basic_bisection_on_makespan() {
        let funcs = mixed_cluster();
        for n in [1000u64, 50_000, 10_000_000] {
            let a = BisectionPartitioner::new().partition(n, &funcs).unwrap();
            let b = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
            let rel = (a.makespan - b.makespan).abs() / a.makespan.max(b.makespan);
            assert!(rel < 1e-3, "n = {n}: basic {} vs modified {}", a.makespan, b.makespan);
        }
    }

    #[test]
    fn handles_exponential_tails_within_budget() {
        // The basic algorithm's worst case is the modified algorithm's
        // bread and butter: the step count stays O(p·log n).
        let funcs =
            vec![AnalyticSpeed::exp_tail(100.0, 10.0), AnalyticSpeed::exp_tail(100.0, 10.0)];
        let n = 2000;
        let r = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
        assert_eq!(r.distribution.total(), n);
        let bound = 4 * funcs.len() * ((n + 2) as f64).log2().ceil() as usize + 64;
        assert!(r.trace.steps() <= bound, "{} steps exceeds budget {}", r.trace.steps(), bound);
        // Symmetric processors must receive a near-even split.
        let c = r.distribution.counts();
        assert!((c[0] as i64 - c[1] as i64).abs() <= 1, "{c:?}");
    }

    #[test]
    fn step_count_is_logarithmic_in_n() {
        let funcs = mixed_cluster();
        let small = ModifiedPartitioner::new().partition(10_000, &funcs).unwrap();
        let large = ModifiedPartitioner::new().partition(100_000_000, &funcs).unwrap();
        // log₂(1e8/1e4) ≈ 13.3: the large problem may take more steps, but
        // only by an O(p·log) factor, never proportionally to n.
        assert!(large.trace.steps() <= small.trace.steps() + 4 * funcs.len() * 16 + 16);
    }

    #[test]
    fn constant_speeds_reduce_to_proportional() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(50.0)];
        let r = ModifiedPartitioner::new().partition(3000, &funcs).unwrap();
        assert_eq!(r.distribution.counts(), &[2000, 1000]);
    }

    #[test]
    fn tiny_problems_terminate() {
        let funcs = mixed_cluster();
        for n in 1..=8u64 {
            let r = ModifiedPartitioner::new().partition(n, &funcs).unwrap();
            assert_eq!(r.distribution.total(), n);
        }
    }

    #[test]
    fn warm_resolve_is_bit_identical_to_cold() {
        let funcs = mixed_cluster();
        let p = ModifiedPartitioner::new();
        let base = p.partition(10_000_000, &funcs).unwrap();
        for n in [10_000_000u64, 10_000_001, 9_999_000, 10_010_000, 2_000_000] {
            let cold = p.partition(n, &funcs).unwrap();
            let warm = p.resolve_from(&base.distribution, n, &funcs).unwrap();
            assert_eq!(cold.distribution, warm.distribution, "n = {n}");
            assert_eq!(cold.makespan.to_bits(), warm.makespan.to_bits(), "n = {n}");
            assert!(warm.trace.warm_bracket, "n = {n}: warm bracket not used");
        }
    }
}
