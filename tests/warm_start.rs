//! Tier-1 differential pin of the warm-start contract.
//!
//! Warm starting (`resolve_from`) reconstructs the previous solution's
//! optimal slope and seeds the bisection bracket with it, so a
//! near-duplicate request costs `O(p)` intersection work instead of a full
//! cold bracket construction plus `O(log n)` search. The contract this
//! suite pins: **a warm-started solve is bit-identical to a cold solve** —
//! equal counts, equal makespan bits — always, for every algorithm, at any
//! distance from the donor (a seed that fails to bracket falls back to
//! cold bracket construction transparently).
//!
//! 1. **Core sweep** — ≥120 seeded testkit clusters × every planner
//!    registry entry × donor deltas near and far
//!    ([`fpm_testkit::conformance::run_warm_start_sweep`]).
//! 2. **Engine sweep** — ≥100 wire-format clusters against a live
//!    [`fpm_serve::Engine`]: near-duplicate sizes warm-start from cached
//!    donor plans, *including across a refit's epoch bump* (the donor then
//!    comes from the cluster's previous `(fingerprint, epoch)`), and every
//!    plan matches a direct solve bit-exactly. The
//!    `warm_starts`/`warm_start_fallbacks` counters must account for every
//!    miss that had a donor available.
//!
//! Case counts scale with `FPM_TESTKIT_CASES`; seeds derive from
//! `FPM_TESTKIT_SEED`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use fpm_core::speed::SpeedFunction;
use fpm_serve::engine::{solve, Engine, EngineConfig};
use fpm_serve::metrics::Metrics;
use fpm_serve::protocol::{ClusterRefView, ClusterSpec, WireModel};
use fpm_serve::registry::Registry;
use fpm_serve::AlgorithmId;
use fpm_testkit::conformance::{env_base_seed, env_cases, run_warm_start_sweep, ConformanceConfig};
use fpm_testkit::{GenConfig, WireCluster};

/// Every algorithm in the planner registry, cycled across cases.
const ALGORITHMS: &[AlgorithmId] = &[
    AlgorithmId::Combined,
    AlgorithmId::Basic,
    AlgorithmId::Modified,
    AlgorithmId::Secant,
    AlgorithmId::Bounded,
    AlgorithmId::Contiguous,
    AlgorithmId::SingleAt(5e5),
];

#[test]
fn warm_resolve_is_bit_identical_across_seeded_clusters() {
    let report = run_warm_start_sweep(&ConformanceConfig {
        cases: env_cases(120).max(120),
        base_seed: env_base_seed(0x3A2B_5EED),
        ..ConformanceConfig::default()
    });
    assert!(report.cases_run >= 120, "acceptance floor is 120 clusters");
    report.assert_ok();
}

#[test]
fn engine_warm_starts_are_bit_identical_including_epoch_bumps() {
    let cases = env_cases(100).max(100);
    let base = env_base_seed(0x77A2_0057);
    let cfg = GenConfig::default();

    let engine = Arc::new(Engine::new(1024, EngineConfig::default()));
    let metrics = Arc::new(Metrics::new());
    let registry = Registry::new(64);

    let mut attempts_floor = 0u64;
    let mut bumps = 0usize;
    for i in 0..cases {
        let seed = base.wrapping_add(i as u64);
        let wire = WireCluster::from_seed(seed, &cfg);
        let models: Vec<WireModel> = wire
            .models
            .iter()
            .map(|(name, knots)| WireModel {
                name: name.clone(),
                knots: knots.clone(),
                cost: false,
            })
            .collect();
        // Bounded name pool: re-registering a name replaces the cluster.
        let name = format!("warm-{}", i % 32);
        let c0 = registry
            .register(&name, &ClusterSpec::Inline(models))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: register failed: {e}"));
        let algorithm = ALGORITHMS[i % ALGORITHMS.len()];

        // Cold solve: populates the donor for everything that follows.
        let cold = engine.partition(&c0, wire.n, algorithm, Some(30_000), &metrics);
        if cold.is_err() {
            // e.g. Bounded with insufficient capacity — nothing to donate.
            continue;
        }

        // Near-duplicate sizes: every one is a miss with a same-epoch
        // donor, so every one must attempt a warm start.
        let step = (wire.n / 1000).max(1);
        for m in [wire.n + 1, (wire.n - 1).max(1), wire.n + step + 3] {
            let direct = solve(algorithm, m, &c0.funcs);
            let served = engine.partition(&c0, m, algorithm, Some(30_000), &metrics);
            match (direct, served) {
                (Ok(direct), Ok(served)) => {
                    attempts_floor += 1;
                    assert_eq!(
                        served.plan.counts, direct.counts,
                        "seed {seed:#x} ({algorithm:?}, n={m}): warm counts diverge"
                    );
                    assert_eq!(
                        served.plan.makespan.to_bits(),
                        direct.makespan.to_bits(),
                        "seed {seed:#x} (n={m}): warm makespan not bit-identical"
                    );
                }
                (Err(_), Err(_)) => {}
                (direct, served) => panic!(
                    "seed {seed:#x} (n={m}): engine/direct disagreement: {direct:?} vs {served:?}"
                ),
            }
        }

        // Epoch transition: a corroborated report refits machine 0 and
        // bumps the epoch. The very next solve at the same n misses the
        // cache but finds the pre-refit plan under the cluster's previous
        // (fingerprint, epoch) — and must still match a cold solve on the
        // refined model exactly.
        let fpm_serve::registry::MachineModel::Speed(m0) = &c0.models[0] else {
            unreachable!("generated clusters are speed machines")
        };
        let x = (m0.max_size() * 0.25).max(1.0);
        let s_slow = m0.speed(x) * 0.65;
        // NaN speeds must skip too, so compare through partial_cmp.
        if s_slow.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            continue;
        }
        let elapsed_us = x / s_slow * 1e6;
        let _ = registry.report(ClusterRefView::Name(&name), 0, x, elapsed_us);
        let outcome = registry.report(ClusterRefView::Name(&name), 0, x, elapsed_us);
        if !outcome.map(|o| o.accepted).unwrap_or(false) {
            continue;
        }
        let c1 = registry
            .lookup_ref(ClusterRefView::Name(&name))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: lookup after refit failed: {e}"));
        assert_eq!(c1.epoch, c0.epoch + 1, "seed {seed:#x}");
        assert_eq!(
            c1.prev_fingerprint.as_deref(),
            Some(c0.fingerprint.as_str()),
            "seed {seed:#x}: refit must record the donor fingerprint"
        );
        let direct = solve(algorithm, wire.n, &c1.funcs);
        let served = engine.partition(&c1, wire.n, algorithm, Some(30_000), &metrics);
        match (direct, served) {
            (Ok(direct), Ok(served)) => {
                attempts_floor += 1;
                bumps += 1;
                assert!(!served.cached, "seed {seed:#x}: stale plan served across epoch bump");
                assert_eq!(
                    served.plan.counts, direct.counts,
                    "seed {seed:#x}: post-refit warm counts diverge"
                );
                assert_eq!(
                    served.plan.makespan.to_bits(),
                    direct.makespan.to_bits(),
                    "seed {seed:#x}: post-refit warm makespan not bit-identical"
                );
            }
            (Err(_), Err(_)) => {}
            (direct, served) => panic!(
                "seed {seed:#x}: post-refit engine/direct disagreement: {direct:?} vs {served:?}"
            ),
        }
    }

    let warm = metrics.warm_starts.load(Ordering::Relaxed);
    let fallbacks = metrics.warm_start_fallbacks.load(Ordering::Relaxed);
    assert!(
        warm + fallbacks >= attempts_floor,
        "every donor-bearing miss must attempt a warm start: \
         {warm} seeded + {fallbacks} fallbacks < {attempts_floor} attempts"
    );
    assert!(warm > 0, "no solve was actually seeded from a donor bracket");
    assert!(bumps > 0, "the sweep never exercised a post-refit donor");
}
