//! Experiment reports: tabular results with CSV export, plus the unified
//! `BENCH_*.json` machine-readable artifact emitter.
//!
//! Every `BENCH_*.json` file shares one envelope (see
//! [`bench_json_envelope`]):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "experiment": "<id>",
//!   "git_commit": "<hex or \"unknown\">",
//!   "results": { ...experiment-specific... }
//! }
//! ```
//!
//! so downstream tooling can key on `schema_version`/`experiment` without
//! per-experiment parsers. The JSON values come from [`fpm_serve::json`],
//! whose writer renders floats shortest-round-trip.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use fpm_serve::json::Json;

/// Version of the shared `BENCH_*.json` envelope. Bump when the envelope
/// (not an experiment's `results` payload) changes shape.
///
/// History: 2 — serve results gained `pipelined`/`batch` phases and the
/// cluster stanza gained the load-shape parameters; 1 — initial envelope.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// A tabular experiment result.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig22a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, paper comparison).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// CSV rendering (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// The current git commit (short of nothing to hash against, `"unknown"`
/// outside a repository or without git on PATH).
pub fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Wraps an experiment's results in the shared envelope.
pub fn bench_json_envelope(experiment: &str, results: Json) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::uint(BENCH_SCHEMA_VERSION)),
        ("experiment".into(), Json::str(experiment)),
        ("git_commit".into(), Json::str(git_commit())),
        ("results".into(), results),
    ])
}

/// Writes `BENCH_<experiment>.json` (envelope + payload) into the current
/// directory and returns its path.
pub fn write_bench_json(experiment: &str, results: Json) -> io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{experiment}.json"));
    let mut body = bench_json_envelope(experiment, results).to_string();
    body.push('\n');
    fs::write(&path, body)?;
    Ok(path)
}

/// Formats a float with the given precision, trimming `-0`.
pub fn fnum(v: f64, precision: usize) -> String {
    let s = format!("{v:.precision$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_owned()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "x,y".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn text_contains_everything() {
        let t = sample().to_text();
        assert!(t.contains("demo"));
        assert!(t.contains("x,y"));
        assert!(t.contains("hello"));
    }

    #[test]
    fn csv_quotes_separators() {
        let c = sample().to_csv();
        assert!(c.contains("\"x,y\""));
        assert!(c.starts_with("a,b\n"));
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("fpm_bench_test_reports");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.contains("x,y"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnum_trims_negative_zero() {
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(1.236, 2), "1.24");
    }

    #[test]
    fn bench_envelope_has_version_commit_and_payload() {
        let payload = Json::Obj(vec![("x".into(), Json::uint(7))]);
        let env = bench_json_envelope("demo", payload);
        assert_eq!(
            env.get("schema_version").and_then(Json::as_u64),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert_eq!(env.get("experiment").and_then(Json::as_str), Some("demo"));
        let commit = env.get("git_commit").and_then(Json::as_str).unwrap();
        assert!(!commit.is_empty());
        assert_eq!(
            env.get("results").and_then(|r| r.get("x")).and_then(Json::as_u64),
            Some(7)
        );
        // The rendered envelope must parse back.
        let round = Json::parse(&env.to_string()).unwrap();
        assert_eq!(round.get("experiment").and_then(Json::as_str), Some("demo"));
    }

    #[test]
    fn git_commit_is_hex_or_unknown() {
        let c = git_commit();
        assert!(
            c == "unknown" || (c.len() == 40 && c.chars().all(|ch| ch.is_ascii_hexdigit())),
            "{c}"
        );
    }
}
