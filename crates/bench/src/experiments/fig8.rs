//! Fig. 8: the slope-bisection walk of the basic algorithm — the sequence
//! of trial lines narrowing onto the optimally sloped line.

use fpm_core::partition::{BisectionPartitioner, Partitioner};
use fpm_core::speed::AnalyticSpeed;

use crate::report::{fnum, Report};

fn four_processors() -> Vec<AnalyticSpeed> {
    vec![
        AnalyticSpeed::decreasing(220.0, 3e6, 2.0),
        AnalyticSpeed::unimodal(180.0, 5e4, 4e6, 2.0),
        AnalyticSpeed::saturating(120.0, 2e5),
        AnalyticSpeed::paging(260.0, 2e6, 3.0),
    ]
}

/// Traces the basic algorithm on a 4-processor cluster.
pub fn run() -> Report {
    let funcs = four_processors();
    let n = 10_000_000u64;
    let report = BisectionPartitioner::new().partition(n, &funcs).unwrap();
    let mut r = Report::new(
        "fig8",
        "Slope bisection narrowing onto the optimal line (paper Fig. 8)",
        &["step", "lower slope", "upper slope", "trial slope", "Σ elements at trial", "side kept"],
    );
    for it in &report.trace.iterations {
        r.push_row(vec![
            it.step.to_string(),
            format!("{:.6e}", it.lower_slope),
            format!("{:.6e}", it.upper_slope),
            format!("{:.6e}", it.trial_slope),
            fnum(it.total_elements, 0),
            if it.undershoot { "lower (Σ<n)".into() } else { "upper (Σ≥n)".into() },
        ]);
    }
    r.note(format!(
        "final distribution {:?}, makespan {:.3} s, {} bisection steps",
        report.distribution.counts(),
        report.makespan,
        report.trace.steps()
    ));
    r.note("expected: the slope interval halves each step; Σ elements approaches n from both sides");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_shrinks_monotonically() {
        let r = run();
        let widths: Vec<f64> = r
            .rows
            .iter()
            .map(|row| {
                let lo: f64 = row[1].parse().unwrap();
                let hi: f64 = row[2].parse().unwrap();
                hi - lo
            })
            .collect();
        for w in widths.windows(2) {
            assert!(w[1] <= w[0] * 0.75, "interval must shrink: {widths:?}");
        }
    }

    #[test]
    fn totals_bracket_n() {
        let r = run();
        let totals: Vec<f64> =
            r.rows.iter().map(|row| row[4].parse().unwrap()).collect();
        assert!(totals.iter().any(|&t| t < 1e7));
        assert!(totals.iter().any(|&t| t >= 1e7));
        // The last trials are close to n.
        let last = totals.last().unwrap();
        assert!((last - 1e7).abs() / 1e7 < 0.05, "last total {last}");
    }
}
