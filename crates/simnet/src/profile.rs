//! Application profiles: how an application's memory behaviour shapes the
//! speed function.
//!
//! Paper Fig. 1 contrasts three applications on the same four machines:
//!
//! * **ArrayOpsF** — streaming array operations, memory-hierarchy friendly:
//!   a flat plateau with a sharp drop at the paging point *P*;
//! * **MatrixMultATLAS** — cache-blocked dgemm: likewise sharp and
//!   distinctive ("can be approximated by a step-wise function");
//! * **MatrixMult** — the naive triple loop with inefficient memory
//!   reference patterns: "quite a smooth dependence of speed on the problem
//!   size", declining from small sizes onwards.
//!
//! A profile therefore carries the parameters of the shape template in
//! [`crate::speed_model`]: per-architecture peak efficiency, cache
//! sensitivity (how hard speed falls once the working set leaves cache) and
//! paging sharpness (how abruptly speed collapses at the paging point).

use crate::machine::Arch;

/// Profile of an application's interaction with the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProfile {
    /// Streaming array operations (paper Fig. 1a).
    ArrayOpsF,
    /// Cache-blocked matrix multiplication using ATLAS dgemm (Fig. 1b).
    MatrixMultAtlas,
    /// Naive matrix multiplication, poor memory reference patterns
    /// (Fig. 1c and the kernel of the paper's own experiments).
    MatrixMult,
    /// Right-looking LU factorisation (the paper's second application).
    LuFactorization,
}

impl AppProfile {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AppProfile::ArrayOpsF => "ArrayOpsF",
            AppProfile::MatrixMultAtlas => "MatrixMultATLAS",
            AppProfile::MatrixMult => "MatrixMult",
            AppProfile::LuFactorization => "LUFactorization",
        }
    }

    /// Sustained useful flops per clock cycle — the post-cache,
    /// pre-paging speed — for the application on the given architecture.
    ///
    /// Calibrated, together with the cache-boost factors, to the values the
    /// paper quotes: X5/X6-class Xeons reach ≈250 MFlops on the naive MM at
    /// a 4500×4500 problem and ≈130 MFlops on LU at 8500×8500; the 440 MHz
    /// UltraSPARC reaches ≈31 MFlops on MM at 4500; the Pentium III does
    /// ≈19 MFlops on LU at 4500 (those checks live in
    /// `speed_model::tests`). ATLAS multiplies the naive MM efficiency by
    /// roughly 3 (Fig. 1b vs 1c peak levels).
    pub fn flops_per_cycle(&self, arch: Arch) -> f64 {
        let naive_mm = match arch {
            Arch::PentiumIii => 0.055,
            Arch::Pentium4 => 0.070,
            Arch::Xeon => 0.107,
            Arch::UltraSparc => 0.054,
            Arch::GenericX86 => 0.060,
        };
        match self {
            AppProfile::MatrixMult => naive_mm,
            AppProfile::MatrixMultAtlas => naive_mm * 3.0,
            AppProfile::ArrayOpsF => naive_mm * 0.6,
            AppProfile::LuFactorization => match arch {
                Arch::PentiumIii => 0.016,
                Arch::Pentium4 => 0.035,
                Arch::Xeon => 0.0566,
                Arch::UltraSparc => 0.040,
                Arch::GenericX86 => 0.035,
            },
        }
    }

    /// In-cache speed-up factor: how much faster than the sustained
    /// (post-cache, pre-paging) speed the kernel runs while its working set
    /// fits in cache. Naive kernels gain a lot from residency (and
    /// therefore decline visibly as the problem grows, Fig. 1c); blocked
    /// kernels gain almost nothing because they restructure every problem
    /// into cache-sized tiles (flat plateaus of Fig. 1a/1b).
    pub fn cache_boost(&self) -> f64 {
        match self {
            AppProfile::ArrayOpsF => 0.05,
            AppProfile::MatrixMultAtlas => 0.10,
            AppProfile::MatrixMult => 2.2,
            AppProfile::LuFactorization => 1.5,
        }
    }

    /// Exponent of the cache-boost decay with problem size: small values
    /// spread the decline over decades of sizes (the smooth curves of
    /// Fig. 1c), large values make a sharp step at the cache boundary.
    pub fn cache_sensitivity(&self) -> f64 {
        match self {
            AppProfile::ArrayOpsF => 4.0,
            AppProfile::MatrixMultAtlas => 4.0,
            AppProfile::MatrixMult => 0.35,
            AppProfile::LuFactorization => 0.30,
        }
    }

    /// Sharpness (exponent) of the paging collapse: carefully designed
    /// applications fall off a cliff at *P*; naive kernels degrade more
    /// gradually because they are already memory-bound.
    pub fn paging_sharpness(&self) -> f64 {
        match self {
            AppProfile::ArrayOpsF => 8.0,
            AppProfile::MatrixMultAtlas => 6.0,
            AppProfile::MatrixMult => 2.5,
            AppProfile::LuFactorization => 3.0,
        }
    }

    /// Width of the paging transition as a fraction of the paging point:
    /// cache-friendly kernels fall off a narrow cliff right at *P*
    /// (their working set flips from resident to thrashing at once);
    /// naive kernels, already memory-bound, degrade over a wide range.
    pub fn paging_transition(&self) -> f64 {
        match self {
            AppProfile::ArrayOpsF => 0.15,
            AppProfile::MatrixMultAtlas => 0.20,
            AppProfile::MatrixMult => 1.0,
            AppProfile::LuFactorization => 0.6,
        }
    }

    /// Floor of the paging factor: the residual fraction of sustained
    /// speed once the working set is swap-backed. Dense kernels access
    /// memory in long streams, so the 2003-era Linux/Solaris swap of the
    /// paper's testbed sustains a few percent of in-memory speed rather
    /// than collapsing to zero — which is also why the paper could run
    /// n = 32 000 problems (≈ the testbed's total free memory) in hours.
    pub fn paging_floor(&self) -> f64 {
        match self {
            AppProfile::ArrayOpsF => 0.04,
            AppProfile::MatrixMultAtlas => 0.05,
            AppProfile::MatrixMult => 0.06,
            AppProfile::LuFactorization => 0.08,
        }
    }

    /// All profiles, for sweeps.
    pub fn all() -> [AppProfile; 4] {
        [
            AppProfile::ArrayOpsF,
            AppProfile::MatrixMultAtlas,
            AppProfile::MatrixMult,
            AppProfile::LuFactorization,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_is_faster_than_naive_everywhere() {
        for arch in [
            Arch::PentiumIii,
            Arch::Pentium4,
            Arch::Xeon,
            Arch::UltraSparc,
            Arch::GenericX86,
        ] {
            assert!(
                AppProfile::MatrixMultAtlas.flops_per_cycle(arch)
                    > AppProfile::MatrixMult.flops_per_cycle(arch)
            );
        }
    }

    #[test]
    fn sustained_speeds_are_positive_and_arch_ordered() {
        // The 2.8 GHz Xeon class sustains more than the 440 MHz SPARC on
        // every application; precise calibration against the paper's quoted
        // MFlops is asserted in `speed_model::tests`, which includes the
        // cache-boost factor.
        for app in AppProfile::all() {
            let xeon = app.flops_per_cycle(Arch::Xeon) * 1977.0;
            let sparc = app.flops_per_cycle(Arch::UltraSparc) * 440.0;
            assert!(xeon > sparc, "{}: {xeon} vs {sparc}", app.name());
            assert!(sparc > 0.0);
        }
    }

    #[test]
    fn naive_kernels_gain_more_from_cache_than_blocked() {
        assert!(AppProfile::MatrixMult.cache_boost() > AppProfile::MatrixMultAtlas.cache_boost());
        // Blocked kernels transition sharply at the cache boundary; naive
        // kernels decline over decades of sizes.
        assert!(
            AppProfile::MatrixMultAtlas.cache_sensitivity()
                > AppProfile::MatrixMult.cache_sensitivity()
        );
    }

    #[test]
    fn efficient_kernels_page_sharply() {
        assert!(
            AppProfile::ArrayOpsF.paging_sharpness() > AppProfile::MatrixMult.paging_sharpness()
        );
    }

    #[test]
    fn all_returns_every_profile() {
        let names: Vec<&str> = AppProfile::all().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["ArrayOpsF", "MatrixMultATLAS", "MatrixMult", "LUFactorization"]
        );
    }
}
