//! Closed-form speed-function families.
//!
//! These cover every admissible shape of paper Fig. 5 plus two extremes used
//! in the complexity analysis of §2: the exponential-tail function for which
//! the basic bisection algorithm degenerates to `O(p·n)`, and the step-wise
//! function of the Drozdowski–Wolniewicz model \[19\] that the paper contrasts
//! with its smooth model.

use super::function::SpeedFunction;

/// A closed-form speed function.
///
/// Construct via the shape-specific constructors; each documents which
/// experimental behaviour from the paper it models. All shapes satisfy the
/// single-intersection requirement (`speed(x)/x` strictly decreasing).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticSpeed {
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    Constant {
        peak: f64,
    },
    Decreasing {
        peak: f64,
        scale: f64,
        alpha: f64,
    },
    Saturating {
        peak: f64,
        ramp: f64,
    },
    Unimodal {
        peak: f64,
        ramp: f64,
        page_at: f64,
        alpha: f64,
    },
    Paging {
        peak: f64,
        page_at: f64,
        alpha: f64,
    },
    ExpTail {
        peak: f64,
        scale: f64,
    },
    Stepwise {
        /// `(threshold, speed)` pairs: the function takes value `speed` for
        /// `x ≤ threshold` of the first pair whose threshold is ≥ x.
        levels: Vec<(f64, f64)>,
    },
}

fn assert_pos(v: f64, name: &str) {
    assert!(v.is_finite() && v > 0.0, "{name} must be positive and finite, got {v}");
}

impl AnalyticSpeed {
    /// The single-number model: constant speed `peak`.
    pub fn constant(peak: f64) -> Self {
        assert_pos(peak, "peak");
        Self { kind: Kind::Constant { peak } }
    }

    /// Strictly decreasing shape (`s1(x)` of paper Fig. 5): applications
    /// with inefficient memory reference patterns (the naive `MatrixMult`
    /// of Fig. 1c) whose speed declines smoothly from the start.
    ///
    /// `s(x) = peak / (1 + (x/scale)^alpha)` with `alpha ≥ 1`.
    pub fn decreasing(peak: f64, scale: f64, alpha: f64) -> Self {
        assert_pos(peak, "peak");
        assert_pos(scale, "scale");
        assert!(alpha >= 1.0, "alpha must be ≥ 1 for a smoothly decreasing shape");
        Self { kind: Kind::Decreasing { peak, scale, alpha } }
    }

    /// Strictly increasing, saturating shape (`s3(x)` of paper Fig. 5):
    /// per-element overheads amortise with size and the machine never pages
    /// in the observed range.
    ///
    /// `s(x) = peak · x / (x + ramp)`; note `s(x)/x = peak/(x+ramp)` is
    /// strictly decreasing, so the shape assumption holds.
    pub fn saturating(peak: f64, ramp: f64) -> Self {
        assert_pos(peak, "peak");
        assert_pos(ramp, "ramp");
        Self { kind: Kind::Saturating { peak, ramp } }
    }

    /// Increasing-then-decreasing shape (`s2(x)` of paper Fig. 5): speed
    /// ramps up, plateaus near `peak`, then degrades once the problem stops
    /// fitting in main memory at `page_at` (the paging point *P* of
    /// Fig. 1).
    ///
    /// `s(x) = peak · x/(x+ramp) · pagefactor(x)` where the paging factor is
    /// `1 / (1 + ((x-page_at)/page_at)^alpha)` past the paging point.
    pub fn unimodal(peak: f64, ramp: f64, page_at: f64, alpha: f64) -> Self {
        assert_pos(peak, "peak");
        assert_pos(ramp, "ramp");
        assert_pos(page_at, "page_at");
        assert!(alpha >= 1.0, "alpha must be ≥ 1");
        Self { kind: Kind::Unimodal { peak, ramp, page_at, alpha } }
    }

    /// Flat until the paging point, then degrading: the idealised shape of a
    /// carefully designed application (ArrayOpsF / MatrixMultATLAS of
    /// Fig. 1a–b) once fluctuation bands smooth the steps out.
    ///
    /// `alpha` controls how aggressively the OS paging algorithm degrades
    /// the speed — the paper notes different paging algorithms produce
    /// *different levels of speed degradation* for equal-size tasks.
    pub fn paging(peak: f64, page_at: f64, alpha: f64) -> Self {
        assert_pos(peak, "peak");
        assert_pos(page_at, "page_at");
        assert!(alpha >= 1.0, "alpha must be ≥ 1");
        Self { kind: Kind::Paging { peak, page_at, alpha } }
    }

    /// Exponentially decaying speed: `s(x) = peak · e^(−x/scale)`.
    ///
    /// This is the worst case of paper §2 for the *basic* bisection
    /// algorithm: the optimal slope is `θ_opt(n) = O(e^(−n))`, so slope
    /// bisection needs `O(n)` steps while the modified algorithm keeps its
    /// `O(p²·log n)` bound. Used by the ablation benchmarks.
    pub fn exp_tail(peak: f64, scale: f64) -> Self {
        assert_pos(peak, "peak");
        assert_pos(scale, "scale");
        Self { kind: Kind::ExpTail { peak, scale } }
    }

    /// Piece-wise constant speed with non-increasing levels: the
    /// Drozdowski–Wolniewicz \[19\] memory-hierarchy model the paper compares
    /// against. `levels` are `(upper_size, speed)` pairs with strictly
    /// increasing sizes and non-increasing speeds; sizes beyond the last
    /// threshold keep the final speed.
    pub fn step_levels(levels: Vec<(f64, f64)>) -> Self {
        assert!(!levels.is_empty(), "at least one level required");
        for w in levels.windows(2) {
            assert!(w[1].0 > w[0].0, "thresholds must be strictly increasing");
            assert!(w[1].1 <= w[0].1, "speeds must be non-increasing for the shape assumption");
        }
        for &(t, s) in &levels {
            assert_pos(t, "threshold");
            assert_pos(s, "level speed");
        }
        Self { kind: Kind::Stepwise { levels } }
    }

    /// Peak (supremum) speed of the function.
    pub fn peak(&self) -> f64 {
        match &self.kind {
            Kind::Constant { peak }
            | Kind::Decreasing { peak, .. }
            | Kind::Saturating { peak, .. }
            | Kind::Unimodal { peak, .. }
            | Kind::Paging { peak, .. }
            | Kind::ExpTail { peak, .. } => *peak,
            Kind::Stepwise { levels } => levels[0].1,
        }
    }
}

fn page_factor(x: f64, page_at: f64, alpha: f64) -> f64 {
    if x <= page_at {
        1.0
    } else {
        1.0 / (1.0 + ((x - page_at) / page_at).powf(alpha))
    }
}

impl SpeedFunction for AnalyticSpeed {
    fn speed(&self, x: f64) -> f64 {
        let x = x.max(0.0);
        match &self.kind {
            Kind::Constant { peak } => *peak,
            Kind::Decreasing { peak, scale, alpha } => peak / (1.0 + (x / scale).powf(*alpha)),
            Kind::Saturating { peak, ramp } => {
                if x == 0.0 {
                    0.0
                } else {
                    peak * x / (x + ramp)
                }
            }
            Kind::Unimodal { peak, ramp, page_at, alpha } => {
                if x == 0.0 {
                    0.0
                } else {
                    peak * x / (x + ramp) * page_factor(x, *page_at, *alpha)
                }
            }
            Kind::Paging { peak, page_at, alpha } => peak * page_factor(x, *page_at, *alpha),
            Kind::ExpTail { peak, scale } => peak * (-x / scale).exp(),
            Kind::Stepwise { levels } => {
                for &(threshold, speed) in levels {
                    if x <= threshold {
                        return speed;
                    }
                }
                levels.last().expect("non-empty").1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::function::check_single_intersection;

    const SHAPES: &str = "all analytic shapes must satisfy the single-intersection property";

    fn all_shapes() -> Vec<(&'static str, AnalyticSpeed)> {
        vec![
            ("constant", AnalyticSpeed::constant(100.0)),
            ("decreasing", AnalyticSpeed::decreasing(200.0, 1e6, 2.0)),
            ("saturating", AnalyticSpeed::saturating(150.0, 5e4)),
            ("unimodal", AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0)),
            ("paging", AnalyticSpeed::paging(300.0, 2e6, 3.0)),
            ("exp_tail", AnalyticSpeed::exp_tail(100.0, 1e5)),
            (
                "stepwise",
                AnalyticSpeed::step_levels(vec![(1e4, 120.0), (1e6, 120.0), (1e8, 40.0)]),
            ),
        ]
    }

    #[test]
    fn all_shapes_satisfy_single_intersection() {
        for (name, f) in all_shapes() {
            assert!(
                check_single_intersection(&f, 1.0, 1e9, 400).is_ok(),
                "{name}: {SHAPES}"
            );
        }
    }

    #[test]
    fn all_shapes_positive_and_finite() {
        for (name, f) in all_shapes() {
            for &x in &[1.0, 10.0, 1e3, 1e6, 1e9] {
                let s = f.speed(x);
                assert!(s.is_finite() && s >= 0.0, "{name} at {x} gave {s}");
            }
        }
    }

    #[test]
    fn unimodal_rises_then_falls() {
        let f = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        assert!(f.speed(1e3) < f.speed(1e5), "rising part");
        assert!(f.speed(1e6) > f.speed(5e7), "falling part past the paging point");
    }

    #[test]
    fn paging_is_flat_then_falls() {
        let f = AnalyticSpeed::paging(300.0, 2e6, 3.0);
        assert_eq!(f.speed(1.0), 300.0);
        assert_eq!(f.speed(2e6), 300.0);
        assert!(f.speed(4e6) < 300.0);
        assert!(f.speed(1e8) < 1.0, "speed collapses well past the paging point");
    }

    #[test]
    fn exp_tail_decays_exponentially() {
        let f = AnalyticSpeed::exp_tail(100.0, 1e5);
        let ratio = f.speed(2e5) / f.speed(1e5);
        assert!((ratio - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn stepwise_levels_lookup() {
        let f = AnalyticSpeed::step_levels(vec![(100.0, 50.0), (1000.0, 20.0)]);
        assert_eq!(f.speed(50.0), 50.0);
        assert_eq!(f.speed(100.0), 50.0);
        assert_eq!(f.speed(500.0), 20.0);
        assert_eq!(f.speed(5000.0), 20.0, "sizes past the last threshold keep the last speed");
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn stepwise_rejects_increasing_speeds() {
        AnalyticSpeed::step_levels(vec![(100.0, 10.0), (200.0, 20.0)]);
    }

    #[test]
    fn peak_reports_supremum() {
        assert_eq!(AnalyticSpeed::constant(42.0).peak(), 42.0);
        assert_eq!(AnalyticSpeed::saturating(99.0, 1.0).peak(), 99.0);
        assert_eq!(
            AnalyticSpeed::step_levels(vec![(10.0, 70.0), (20.0, 30.0)]).peak(),
            70.0
        );
    }

    #[test]
    fn decreasing_halves_at_scale() {
        let f = AnalyticSpeed::decreasing(100.0, 1e6, 1.0);
        assert!((f.speed(1e6) - 50.0).abs() < 1e-9);
    }
}
