//! Simulated parallel matrix multiplication `C = A×Bᵀ` with horizontal
//! striped partitioning (paper Fig. 16).
//!
//! The partitioner distributes the `3n²` matrix elements; the element
//! distribution is converted to whole rows; each processor's execution time
//! is then its *flop volume* divided by its speed **at the problem size it
//! actually received** (`x_i = 3·r_i·n` elements). A slice of `r` rows
//! performs `2·r·n²` flops, which is proportional to its element count, so
//! equalising `x_i/s_i(x_i)` equalises finish times — the paper's
//! optimality criterion.
//!
//! Communication is excluded from the cost model, as in the paper (§1).

use fpm_core::error::Result;
use fpm_core::partition::{Distribution, Partitioner};
use fpm_core::speed::SpeedFunction;
use fpm_kernels::striped::{rows_from_element_distribution, StripedLayout};

use crate::pool::scoped_map;

/// Outcome of a simulated striped-MM run.
#[derive(Debug, Clone)]
pub struct MmRunResult {
    /// Matrix dimension.
    pub n: u64,
    /// Element-level distribution the partitioner produced.
    pub distribution: Distribution,
    /// Whole-row layout actually executed.
    pub layout: StripedLayout,
    /// Per-processor execution times in seconds.
    pub times: Vec<f64>,
    /// Parallel execution time (max over processors).
    pub makespan: f64,
}

/// Flop volume of the row stripe `r` of an `n×n` `C = A×Bᵀ`: `2·r·n²`.
fn stripe_flops(rows: usize, n: u64) -> f64 {
    2.0 * rows as f64 * (n as f64) * (n as f64)
}

/// Elements of the three matrices held by a stripe of `r` rows: `3·r·n`.
fn stripe_elements(rows: usize, n: u64) -> f64 {
    3.0 * rows as f64 * n as f64
}

/// Simulates the parallel multiplication of two dense `n×n` matrices over
/// `funcs` under the distribution produced by `partitioner`.
pub fn simulate_mm<F: SpeedFunction, P: Partitioner>(
    n: u64,
    funcs: &[F],
    partitioner: &P,
) -> Result<MmRunResult> {
    let total_elements = 3 * n * n;
    let report = partitioner.partition(total_elements, funcs)?;
    simulate_mm_with_distribution(n, funcs, report.distribution)
}

/// Simulates the run for an explicit element distribution (used to compare
/// single-number and functional distributions on identical footing).
pub fn simulate_mm_with_distribution<F: SpeedFunction>(
    n: u64,
    funcs: &[F],
    distribution: Distribution,
) -> Result<MmRunResult> {
    let layout = rows_from_element_distribution(n as usize, &distribution);
    let times: Vec<f64> = layout
        .row_counts()
        .iter()
        .zip(funcs)
        .map(|(&rows, f)| stripe_time(rows, n, f))
        .collect();
    Ok(assemble_run(n, distribution, layout, times))
}

/// [`simulate_mm`] with the per-processor speed sweep executed in parallel
/// on pool-bounded scoped threads. Results are identical; use this variant
/// when the speed models are expensive to evaluate (e.g. cache-wrapped
/// measured models over large clusters).
pub fn simulate_mm_par<F: SpeedFunction + Sync, P: Partitioner>(
    n: u64,
    funcs: &[F],
    partitioner: &P,
) -> Result<MmRunResult> {
    let total_elements = 3 * n * n;
    let report = partitioner.partition(total_elements, funcs)?;
    let distribution = report.distribution;
    let layout = rows_from_element_distribution(n as usize, &distribution);
    let row_counts = layout.row_counts();
    let times = scoped_map(funcs, |i, f| stripe_time(row_counts[i], n, f));
    Ok(assemble_run(n, distribution, layout, times))
}

/// Execution time of one stripe: flop volume over the speed at the problem
/// size the processor actually received.
fn stripe_time<F: SpeedFunction>(rows: usize, n: u64, f: &F) -> f64 {
    if rows == 0 {
        return 0.0;
    }
    let x = stripe_elements(rows, n);
    let speed_mflops = f.speed(x);
    if speed_mflops <= 0.0 {
        f64::INFINITY
    } else {
        stripe_flops(rows, n) / (speed_mflops * 1e6)
    }
}

fn assemble_run(
    n: u64,
    distribution: Distribution,
    layout: StripedLayout,
    times: Vec<f64>,
) -> MmRunResult {
    let makespan = times.iter().cloned().fold(0.0, f64::max);
    MmRunResult { n, distribution, layout, times, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimCluster;
    use fpm_core::partition::{CombinedPartitioner, SingleNumberPartitioner};
    use fpm_core::speed::ConstantSpeed;
    use fpm_simnet::profile::AppProfile;
    use fpm_simnet::workload;

    #[test]
    fn constant_speeds_give_balanced_times() {
        let funcs = vec![ConstantSpeed::new(100.0), ConstantSpeed::new(50.0)];
        let r = simulate_mm(900, &funcs, &CombinedPartitioner::new()).unwrap();
        assert_eq!(r.layout.total_rows(), 900);
        assert_eq!(r.layout.row_counts(), &[600, 300]);
        let dt = (r.times[0] - r.times[1]).abs() / r.makespan;
        assert!(dt < 0.01, "times {:?}", r.times);
    }

    #[test]
    fn makespan_is_max_of_times() {
        let funcs = vec![ConstantSpeed::new(10.0), ConstantSpeed::new(30.0)];
        let r = simulate_mm(100, &funcs, &CombinedPartitioner::new()).unwrap();
        let max = r.times.iter().cloned().fold(0.0, f64::max);
        assert_eq!(r.makespan, max);
    }

    #[test]
    fn functional_beats_single_number_when_paging_matters() {
        // The paper's headline experiment in miniature: on Table 2 at sizes
        // where some machines page, the functional model's distribution
        // must win (its makespan can never be worse, §3.2).
        let cluster = SimCluster::table2(AppProfile::MatrixMult);
        let n = 20_000u64;
        let functional =
            simulate_mm(n, cluster.funcs(), &CombinedPartitioner::new()).unwrap();
        let single = SingleNumberPartitioner::at_size(workload::mm_elements(500) as f64);
        let single_run = simulate_mm(n, cluster.funcs(), &single).unwrap();
        assert!(
            functional.makespan < single_run.makespan,
            "functional {} vs single-number {}",
            functional.makespan,
            single_run.makespan
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let cluster = SimCluster::table2(AppProfile::MatrixMult);
        let n = 15_000u64;
        let seq = simulate_mm(n, cluster.funcs(), &CombinedPartitioner::new()).unwrap();
        let par = simulate_mm_par(n, cluster.funcs(), &CombinedPartitioner::new()).unwrap();
        assert_eq!(seq.layout, par.layout);
        for (a, b) in seq.times.iter().zip(&par.times) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(seq.makespan.to_bits(), par.makespan.to_bits());
    }

    #[test]
    fn explicit_distribution_is_respected() {
        let funcs = vec![ConstantSpeed::new(10.0), ConstantSpeed::new(10.0)];
        let dist = Distribution::new(vec![100, 300]);
        let r = simulate_mm_with_distribution(100, &funcs, dist).unwrap();
        assert_eq!(r.layout.row_counts(), &[25, 75]);
        assert!(r.times[1] > r.times[0]);
    }

    #[test]
    fn zero_speed_processor_gives_infinite_time_if_loaded() {
        struct Dead;
        impl SpeedFunction for Dead {
            fn speed(&self, _x: f64) -> f64 {
                0.0
            }
        }
        let funcs: Vec<Box<dyn SpeedFunction>> =
            vec![Box::new(ConstantSpeed::new(10.0)), Box::new(Dead)];
        let dist = Distribution::new(vec![50, 50]);
        let r = simulate_mm_with_distribution(10, &funcs, dist).unwrap();
        assert!(r.makespan.is_infinite());
    }
}
