//! Fig. 2: workload-fluctuation bands of MatrixMultATLAS on Comp1, Comp2
//! and Comp4.
//!
//! The paper annotates the bands with widths of roughly 30–40 % at small
//! problem sizes declining to 5–8 % at the largest sizes. We reproduce the
//! measurement: repeatedly observe each machine's speed through the
//! stochastic fluctuation model and report the empirical band width as a
//! percentage of the maximum observed speed.

use fpm_core::speed::SpeedFunction;
use fpm_simnet::fluctuation::{FluctuatingMeasurer, Integration};
use fpm_simnet::profile::AppProfile;
use fpm_simnet::speed_model::MachineSpeed;
use fpm_simnet::testbeds;

use crate::report::{fnum, Report};

const OBSERVATIONS: usize = 200;

/// Empirical band width (fraction of max speed) from repeated observations.
fn observed_width(m: &mut FluctuatingMeasurer<MachineSpeed>, x: f64) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..OBSERVATIONS {
        let s = m.observe(x);
        min = min.min(s);
        max = max.max(s);
    }
    if max <= 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}

/// Runs the band-width measurements of Fig. 2.
pub fn run() -> Report {
    let specs = testbeds::table1();
    let mut r = Report::new(
        "fig2",
        "Workload-fluctuation band widths for MatrixMultATLAS (paper Fig. 2)",
        &["machine", "size fraction of range", "mid speed (MFlops)", "band width (%)"],
    );
    // The paper shows Comp1, Comp2 and Comp4; all are modelled as highly
    // integrated machines for this figure.
    for idx in [0usize, 1, 3] {
        let spec = &specs[idx];
        let truth = MachineSpeed::for_app(spec, AppProfile::MatrixMultAtlas);
        let (_a, b) = truth.model_interval();
        let law = Integration::High.width_law(b);
        let mut measurer =
            FluctuatingMeasurer::new(truth.clone(), law, 0xF16 + idx as u64);
        for frac in [0.02, 0.10, 0.30, 0.60, 0.95] {
            let x = b * frac;
            let w = observed_width(&mut measurer, x);
            r.push_row(vec![
                spec.name.clone(),
                fnum(frac, 2),
                fnum(truth.speed(x), 1),
                fnum(w * 100.0, 1),
            ]);
        }
    }
    r.note("expected: ~30-40 % width at small sizes declining to ~5-8 % at the largest (paper annotates 30/8/5 %, 35/7/5 %, 40/7/5 %)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_narrows_with_problem_size() {
        let r = run();
        // For each machine, compare the first and last sampled widths.
        for chunk in r.rows.chunks(5) {
            let first: f64 = chunk[0][3].parse().unwrap();
            let last: f64 = chunk[4][3].parse().unwrap();
            assert!(
                first > last,
                "{}: width must decline ({first} → {last})",
                chunk[0][0]
            );
            assert!(first > 20.0, "small-size width ≈ 30-40 %: {first}");
            assert!(last < 12.0, "large-size width ≈ 5-8 %: {last}");
        }
    }

    #[test]
    fn three_machines_reported() {
        let r = run();
        assert_eq!(r.rows.len(), 15);
        assert_eq!(r.rows[0][0], "Comp1");
        assert_eq!(r.rows[5][0], "Comp2");
        assert_eq!(r.rows[10][0], "Comp4");
    }
}
