//! # fpm-bench — the reproduction harness
//!
//! One experiment per table and figure of the paper's evaluation, each
//! producing a [`Report`] that the `repro` binary prints and writes to
//! `results/<id>.csv`. The timing-critical experiments are additionally
//! covered by Criterion benchmarks under `benches/`.
//!
//! | id | paper artifact | module |
//! |---|---|---|
//! | `table1` | Table 1 (4-machine specs) | [`experiments::tables`] |
//! | `table2` | Table 2 (12-machine specs + paging) | [`experiments::tables`] |
//! | `fig1` | speed curves, 3 apps × 4 machines | [`experiments::fig1`] |
//! | `fig2` | fluctuation bands | [`experiments::fig2`] |
//! | `fig3` | single-number mispartition | [`experiments::fig3`] |
//! | `fig4` | geometric proportionality at the optimum | [`experiments::fig46`] |
//! | `fig5` | admissible speed-function shapes | [`experiments::fig5`] |
//! | `fig6` | uniqueness/optimality | [`experiments::fig46`] |
//! | `fig8` | slope-bisection trace | [`experiments::fig8`] |
//! | `fig11` | solution-space bisection trace | [`experiments::fig11`] |
//! | `fig13` | polynomial-slope region | [`experiments::fig1315`] |
//! | `fig15` | combined-algorithm decisions | [`experiments::fig1315`] |
//! | `fig18` | initial line detection | [`experiments::fig18`] |
//! | `fig20` | piece-wise model building | [`experiments::fig20`] |
//! | `table3` | serial MM speed shape-invariance | [`experiments::table34`] |
//! | `table4` | serial LU speed shape-invariance | [`experiments::table34`] |
//! | `fig21` | partitioning cost vs n, p | [`experiments::fig21`] |
//! | `fig22a` | MM speedups | [`experiments::fig22`] |
//! | `fig22b` | LU speedups | [`experiments::fig22`] |
//! | `ablation_algorithms` | basic vs modified vs combined | [`experiments::ablations`] |
//! | `ablation_fine_tune` | fine-tuning on/off | [`experiments::ablations`] |
//! | `ablation_builder` | ε sweep of the model builder | [`experiments::ablations`] |
//! | `ext_comm` | communication-aware partitioning (future work §1) | [`experiments::extensions`] |
//! | `ext_contention` | contended-bus DES vs serialised model | [`experiments::extensions`] |
//! | `ext_two_param` | 2-D problem sizes / column strips (§3.1 sketch) | [`experiments::extensions`] |
//! | `ext_bounded` | per-processor memory caps (ref \[20\]) | [`experiments::extensions`] |
//! | `ext_secant` | regula-falsi line search ("ideal algorithm") | [`experiments::extensions`] |
//! | `ext_dynamic` | adaptive re-partitioning under load shifts | [`experiments::extensions`] |
//! | `bench_partition` | optimised vs seed paths (writes `BENCH_partition.json`) | [`experiments::bench_partition`] |
//! | `bench_serve` | daemon throughput/latency, cold vs warm cache (writes `BENCH_serve.json`) | [`experiments::bench_serve`] |
//! | `bench_router` | sharded serving vs single daemon + failover burst (writes `BENCH_router.json`) | [`experiments::bench_router`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Report;

/// Every experiment id known to the harness, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig11",
    "fig13",
    "fig15",
    "fig18",
    "fig20",
    "table3",
    "table4",
    "fig21",
    "fig22a",
    "fig22b",
    "ablation_algorithms",
    "ablation_fine_tune",
    "ablation_builder",
    "ext_comm",
    "ext_contention",
    "ext_two_param",
    "ext_bounded",
    "ext_secant",
    "ext_dynamic",
    "bench_partition",
    "bench_serve",
    "bench_router",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<Report> {
    match id {
        "table1" => Some(experiments::tables::table1()),
        "table2" => Some(experiments::tables::table2()),
        "fig1" => Some(experiments::fig1::run()),
        "fig2" => Some(experiments::fig2::run()),
        "fig3" => Some(experiments::fig3::run()),
        "fig4" => Some(experiments::fig46::fig4()),
        "fig5" => Some(experiments::fig5::run()),
        "fig6" => Some(experiments::fig46::fig6()),
        "fig8" => Some(experiments::fig8::run()),
        "fig11" => Some(experiments::fig11::run()),
        "fig13" => Some(experiments::fig1315::fig13()),
        "fig15" => Some(experiments::fig1315::fig15()),
        "fig18" => Some(experiments::fig18::run()),
        "fig20" => Some(experiments::fig20::run()),
        "table3" => Some(experiments::table34::table3()),
        "table4" => Some(experiments::table34::table4()),
        "fig21" => Some(experiments::fig21::run()),
        "fig22a" => Some(experiments::fig22::fig22a()),
        "fig22b" => Some(experiments::fig22::fig22b()),
        "ablation_algorithms" => Some(experiments::ablations::algorithms()),
        "ablation_fine_tune" => Some(experiments::ablations::fine_tune()),
        "ablation_builder" => Some(experiments::ablations::builder()),
        "ext_comm" => Some(experiments::extensions::comm()),
        "ext_contention" => Some(experiments::extensions::contention()),
        "ext_two_param" => Some(experiments::extensions::two_param()),
        "ext_bounded" => Some(experiments::extensions::bounded_exp()),
        "ext_secant" => Some(experiments::extensions::secant()),
        "ext_dynamic" => Some(experiments::extensions::dynamic()),
        "bench_partition" => Some(experiments::bench_partition::run()),
        "bench_serve" => Some(experiments::bench_serve::run()),
        "bench_router" => Some(experiments::bench_router::run()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiment_ids_resolve() {
        for id in ALL_EXPERIMENTS {
            // Only check dispatch for the cheap ones here; expensive ones
            // are covered by the repro binary run.
            if ["table1", "table2", "fig5"].contains(id) {
                assert!(run_experiment(id).is_some(), "{id}");
            }
        }
        assert!(run_experiment("nonsense").is_none());
    }
}
