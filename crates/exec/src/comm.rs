//! Communication-cost extension (the paper's declared future work).
//!
//! The paper excludes communication from its model but discusses what
//! including it takes (§1): per-link costs in the two-parameter form of
//! Bhat et al. \[13\] — a start-up time plus a data transmission rate — and
//! the Ethernet contention constraint that "only one processor sends a
//! message at a given time", which serialises the transfers.
//!
//! This module implements that model for the striped matrix
//! multiplication: the master scatters the `A` stripes and the whole `B`
//! matrix, workers compute in parallel, and the `C` stripes are gathered.
//! On a serialised network the total time is
//!
//! ```text
//! T = Σ_i comm_i  +  max_i compute_i
//! ```
//!
//! Because the transfers serialise, using *every* machine is no longer
//! always optimal: a slow machine must still pay its start-up and receive
//! all of `B`. [`partition_mm_with_comm`] therefore performs processor
//! *selection* — greedily dropping machines while the total improves —
//! around the computational optimum, which is the standard practical
//! compromise for the problem the paper notes is NP-complete in general.

use fpm_core::error::{Error, Result};
use fpm_core::partition::{Distribution, Partitioner};
use fpm_core::speed::SpeedFunction;

/// A communication link in the two-parameter model of Bhat et al.:
/// `time(m) = startup + m / rate` for an `m`-element message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommLink {
    /// Start-up time (latency) in seconds.
    pub startup: f64,
    /// Transmission rate in elements per second.
    pub rate: f64,
}

impl CommLink {
    /// Creates a link; `startup ≥ 0`, `rate > 0`.
    pub fn new(startup: f64, rate: f64) -> Self {
        assert!(startup >= 0.0 && startup.is_finite());
        assert!(rate > 0.0 && rate.is_finite());
        Self { startup, rate }
    }

    /// Transfer time of `elements` elements.
    pub fn transfer_time(&self, elements: f64) -> f64 {
        if elements <= 0.0 {
            0.0
        } else {
            self.startup + elements / self.rate
        }
    }
}

/// Outcome of a communication-aware partitioning.
#[derive(Debug, Clone)]
pub struct CommAwareResult {
    /// The element distribution (zeros for dropped processors).
    pub distribution: Distribution,
    /// Which processors participate.
    pub active: Vec<bool>,
    /// Serialised communication time.
    pub comm_seconds: f64,
    /// Parallel computation time (max over active processors).
    pub compute_seconds: f64,
}

impl CommAwareResult {
    /// Total execution time under the serialised-communication model.
    pub fn total_seconds(&self) -> f64 {
        self.comm_seconds + self.compute_seconds
    }

    /// Number of participating processors.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Serialised communication time of one worker in the striped `C = A×Bᵀ`:
/// two messages — a scatter carrying its `A` stripe (`x/3` elements) plus
/// the whole `B` (`n²`), and a gather returning its `C` stripe (`x/3`) —
/// each paying the link start-up (the Bhat et al. model is per message).
fn mm_comm_time(link: &CommLink, x: u64, n: u64) -> f64 {
    let scatter = x as f64 / 3.0 + (n * n) as f64;
    let gather = x as f64 / 3.0;
    link.transfer_time(scatter) + link.transfer_time(gather)
}

/// Evaluates the serialised-communication + parallel-compute time of a
/// given distribution, in seconds (compute converted via the MM flop law,
/// matching [`crate::mm_run`] and [`crate::des`]). Processor 0 hosts the
/// matrices and pays no communication for its own stripe.
pub fn evaluate_mm_with_comm<F: SpeedFunction>(
    n: u64,
    funcs: &[F],
    links: &[CommLink],
    distribution: &Distribution,
) -> (f64, f64) {
    assert_eq!(funcs.len(), links.len());
    assert_eq!(funcs.len(), distribution.len());
    let mut comm = 0.0;
    let mut compute: f64 = 0.0;
    for (i, ((f, link), &x)) in
        funcs.iter().zip(links).zip(distribution.counts()).enumerate()
    {
        if x == 0 {
            continue;
        }
        if i != 0 {
            comm += mm_comm_time(link, x, n);
        }
        // A stripe of x = 3·r·n elements performs 2·r·n² = (2/3)·x·n flops.
        let flops = 2.0 / 3.0 * x as f64 * n as f64;
        let s = f.speed(x as f64);
        let t = if s > 0.0 { flops / (s * 1e6) } else { f64::INFINITY };
        compute = compute.max(t);
    }
    (comm, compute)
}

/// Communication-aware partitioning of the striped MM: computes the
/// computational optimum over every subset obtained by greedily dropping
/// the least useful processor, and keeps the best total.
///
/// # Errors
///
/// Propagates partitioning failures; [`Error::NoProcessors`] if `funcs`
/// is empty.
pub fn partition_mm_with_comm<F: SpeedFunction, P: Partitioner>(
    n: u64,
    funcs: &[F],
    links: &[CommLink],
    partitioner: &P,
) -> Result<CommAwareResult> {
    if funcs.is_empty() {
        return Err(Error::NoProcessors);
    }
    assert_eq!(funcs.len(), links.len(), "one link per processor");
    let p = funcs.len();
    let total_elements = 3 * n * n;

    // Evaluate the full distribution over one subset.
    let evaluate_subset = |active: &[bool]| -> Result<CommAwareResult> {
        let subset: Vec<usize> = (0..p).filter(|&i| active[i]).collect();
        let sub_funcs: Vec<&F> = subset.iter().map(|&i| &funcs[i]).collect();
        let report = partitioner.partition(total_elements, &sub_funcs)?;
        let mut counts = vec![0u64; p];
        for (k, &i) in subset.iter().enumerate() {
            counts[i] = report.distribution.counts()[k];
        }
        let distribution = Distribution::new(counts);
        let (comm, compute) = evaluate_mm_with_comm(n, funcs, links, &distribution);
        Ok(CommAwareResult {
            distribution,
            active: active.to_vec(),
            comm_seconds: comm,
            compute_seconds: compute,
        })
    };

    // Steepest-descent processor selection: repeatedly try dropping each
    // active processor and commit the drop that helps the most.
    let mut best = evaluate_subset(&vec![true; p])?;
    loop {
        if best.active_count() <= 1 {
            break;
        }
        let mut improvement: Option<CommAwareResult> = None;
        for i in 0..p {
            if !best.active[i] {
                continue;
            }
            let mut trial_active = best.active.clone();
            trial_active[i] = false;
            let candidate = match evaluate_subset(&trial_active) {
                Ok(c) => c,
                Err(Error::InsufficientCapacity { .. }) => continue,
                Err(e) => return Err(e),
            };
            let current_best = improvement.as_ref().unwrap_or(&best).total_seconds();
            if candidate.total_seconds() < current_best {
                improvement = Some(candidate);
            }
        }
        match improvement {
            Some(better) => best = better,
            None => break,
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm_core::partition::CombinedPartitioner;
    use fpm_core::speed::ConstantSpeed;

    fn uniform_links(p: usize, startup: f64, rate: f64) -> Vec<CommLink> {
        vec![CommLink::new(startup, rate); p]
    }

    #[test]
    fn link_transfer_time() {
        let l = CommLink::new(0.5, 1000.0);
        assert_eq!(l.transfer_time(0.0), 0.0);
        assert!((l.transfer_time(2000.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn free_communication_uses_everyone() {
        let funcs = vec![
            ConstantSpeed::new(100.0),
            ConstantSpeed::new(50.0),
            ConstantSpeed::new(25.0),
        ];
        let links = uniform_links(3, 0.0, 1e15);
        let r =
            partition_mm_with_comm(200, &funcs, &links, &CombinedPartitioner::new()).unwrap();
        assert_eq!(r.active_count(), 3, "with free comm all machines help");
        assert_eq!(r.distribution.total(), 3 * 200 * 200);
    }

    #[test]
    fn expensive_startup_drops_slow_processors() {
        // One fast machine and two crawling ones; each participant costs a
        // large start-up plus receiving all of B. The slow machines save
        // less compute time than their communication costs.
        let funcs = vec![
            ConstantSpeed::new(1000.0),
            ConstantSpeed::new(1.0),
            ConstantSpeed::new(1.0),
        ];
        let links = uniform_links(3, 50.0, 1e4);
        let r =
            partition_mm_with_comm(100, &funcs, &links, &CombinedPartitioner::new()).unwrap();
        assert!(r.active_count() < 3, "slow machines should be dropped: {:?}", r.active);
        assert!(r.active[0], "the fast machine stays");
        assert_eq!(r.distribution.total(), 3 * 100 * 100);
    }

    #[test]
    fn comm_aware_total_never_exceeds_comm_oblivious() {
        let funcs = vec![
            ConstantSpeed::new(200.0),
            ConstantSpeed::new(100.0),
            ConstantSpeed::new(2.0),
            ConstantSpeed::new(1.0),
        ];
        let links = uniform_links(4, 10.0, 1e5);
        let n = 300u64;
        let aware =
            partition_mm_with_comm(n, &funcs, &links, &CombinedPartitioner::new()).unwrap();
        // Comm-oblivious: partition over everyone, then evaluate with comm.
        let oblivious = CombinedPartitioner::new().partition(3 * n * n, &funcs).unwrap();
        let (comm, compute) = evaluate_mm_with_comm(n, &funcs, &links, &oblivious.distribution);
        assert!(
            aware.total_seconds() <= comm + compute + 1e-9,
            "aware {} vs oblivious {}",
            aware.total_seconds(),
            comm + compute
        );
    }

    #[test]
    fn evaluate_charges_workers_not_master_or_idlers() {
        let funcs = vec![
            ConstantSpeed::new(10.0),
            ConstantSpeed::new(10.0),
            ConstantSpeed::new(10.0),
        ];
        let links = uniform_links(3, 5.0, 1e3);
        // Master holds 300 elements, worker 1 holds 300, worker 2 idle.
        let d = Distribution::new(vec![300, 300, 0]);
        let (comm, compute) = evaluate_mm_with_comm(10, &funcs, &links, &d);
        // Worker 1: scatter (100 + 100 elements) + gather (100), two
        // start-ups.
        let expected = (5.0 + 200.0 / 1e3) + (5.0 + 100.0 / 1e3);
        assert!((comm - expected).abs() < 1e-9, "comm {comm} vs {expected}");
        // (2/3)·300·10 = 2000 flops at 10 MFlops.
        assert!((compute - 2000.0 / (10.0 * 1e6)).abs() < 1e-12, "compute {compute}");
    }

    #[test]
    fn single_processor_cluster() {
        let funcs = vec![ConstantSpeed::new(10.0)];
        let links = uniform_links(1, 1.0, 1e3);
        let r =
            partition_mm_with_comm(50, &funcs, &links, &CombinedPartitioner::new()).unwrap();
        assert_eq!(r.active_count(), 1);
        assert_eq!(r.distribution.total(), 3 * 50 * 50);
    }

    #[test]
    fn empty_cluster_errors() {
        let funcs: Vec<ConstantSpeed> = vec![];
        let links: Vec<CommLink> = vec![];
        assert!(matches!(
            partition_mm_with_comm(10, &funcs, &links, &CombinedPartitioner::new()),
            Err(Error::NoProcessors)
        ));
    }
}
