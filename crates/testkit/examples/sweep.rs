//! Ad-hoc conformance sweep driver: `cargo run --example sweep -p fpm-testkit [cases]`.
use fpm_testkit::conformance::{run_conformance, ConformanceConfig};

fn main() {
    let cases: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(500);
    let t0 = std::time::Instant::now();
    let report = run_conformance(&ConformanceConfig { cases, ..Default::default() });
    println!("{} in {:.2?}", report.summary(), t0.elapsed());
    for f in report.failures.iter().take(20) {
        println!("  {f}");
    }
}
