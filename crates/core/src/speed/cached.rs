//! Memoizing wrapper for speed functions.
//!
//! The partitioning algorithms probe each processor's speed at the same
//! abscissas many times over: the bounding-line intersections are
//! re-evaluated as the bracket shrinks, the fine-tuning heap queries
//! `time()` at the same `2p` candidate integer points repeatedly, and the
//! combined algorithm's probing step revisits sizes the chosen algorithm
//! then probes again. [`CachedSpeed`] computes each distinct abscissa once
//! and replays the result — bit-identical by construction, since the
//! cached value *is* the inner function's output.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::function::SpeedFunction;

/// Multiply-shift hasher for the cache's `u64` bit-pattern keys.
///
/// The keys are raw IEEE-754 bit patterns — already high-entropy in the
/// mantissa — so the DoS-resistant SipHash of the default `HashMap` only
/// adds latency: the cache sits on the hot path of every `speed()` probe
/// and the fine-tuning heap issues thousands of them per solve. One
/// Fibonacci multiply mixes the bits plenty for open addressing.
#[derive(Default)]
pub(crate) struct BitsHasher(u64);

impl Hasher for BitsHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type BitsMap = HashMap<u64, f64, BuildHasherDefault<BitsHasher>>;

/// A [`SpeedFunction`] decorator that memoizes `speed(x)` per abscissa.
///
/// Keys are the raw IEEE-754 bits of `x`, so every distinct input value
/// (including `-0.0` vs `0.0`) gets its own slot and the replayed output is
/// exactly the inner function's. The cache lives behind a [`RefCell`]: the
/// wrapper is single-threaded by design, matching the partitioners' inner
/// loops (use one wrapper per run, not a shared global). For a cache that
/// *can* be shared across threads — a long-lived model registry — use
/// [`SharedCachedSpeed`].
///
/// `CachedSpeed` is deliberately **not** `Sync`:
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<fpm_core::speed::CachedSpeed<fpm_core::speed::ConstantSpeed>>();
/// ```
#[derive(Debug)]
pub struct CachedSpeed<F> {
    inner: F,
    cache: RefCell<BitsMap>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<F: SpeedFunction> CachedSpeed<F> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            cache: RefCell::new(BitsMap::default()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Number of probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of probes that had to evaluate the inner function.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops all memoized entries (e.g. between runs against a function
    /// whose underlying measurements were refreshed).
    pub fn clear(&self) {
        self.cache.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }
}

impl<F: SpeedFunction> SpeedFunction for CachedSpeed<F> {
    fn speed(&self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&s) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return s;
        }
        let s = self.inner.speed(x);
        self.misses.set(self.misses.get() + 1);
        self.cache.borrow_mut().insert(key, s);
        s
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }

    fn speeds_at(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "speeds_at buffers must match in length");
        // Route through the memoized point lookup so batched and point-wise
        // probes share one cache (and stay bit-identical trivially).
        for (&x, o) in xs.iter().zip(out.iter_mut()) {
            *o = self.speed(x);
        }
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        self.inner.intersect_slope(slope)
    }
}

/// A thread-safe [`CachedSpeed`]: memoizes `speed(x)` behind a [`Mutex`]
/// so one wrapper can serve concurrent readers.
///
/// [`CachedSpeed`] is deliberately single-threaded (`RefCell`), which is
/// the right tool inside one partitioner run. Long-lived registries — a
/// server holding registered cluster models shared across request threads
/// via `Arc` — need the cache itself to be `Sync`. `SharedCachedSpeed` is
/// that variant: same bit-exact replay semantics (keys are the raw
/// IEEE-754 bits of `x`, the cached value *is* the inner function's
/// output), with the map behind a `Mutex` and the hit/miss counters
/// atomic.
///
/// The lock is held only for the lookup/insert, never across the inner
/// evaluation, so concurrent misses on the same abscissa may both evaluate
/// the inner function — they insert the identical bits, so replay stays
/// deterministic.
#[derive(Debug)]
pub struct SharedCachedSpeed<F> {
    inner: F,
    cache: Mutex<BitsMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<F: SpeedFunction> SharedCachedSpeed<F> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            cache: Mutex::new(BitsMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Number of probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of probes that had to evaluate the inner function.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all memoized entries and resets the counters.
    pub fn clear(&self) {
        self.cache.lock().expect("cache lock poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<F: SpeedFunction> SpeedFunction for SharedCachedSpeed<F> {
    fn speed(&self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&s) = self.cache.lock().expect("cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return s;
        }
        // Evaluate outside the lock: inner models may be arbitrarily slow.
        let s = self.inner.speed(x);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().expect("cache lock poisoned").insert(key, s);
        s
    }

    fn max_size(&self) -> f64 {
        self.inner.max_size()
    }

    fn speeds_at(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "speeds_at buffers must match in length");
        for (&x, o) in xs.iter().zip(out.iter_mut()) {
            *o = self.speed(x);
        }
    }

    fn intersect_slope(&self, slope: f64) -> Option<f64> {
        self.inner.intersect_slope(slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::{AnalyticSpeed, PiecewiseLinearSpeed};

    #[test]
    fn caches_repeated_probes() {
        let f = CachedSpeed::new(AnalyticSpeed::decreasing(200.0, 1e6, 2.0));
        let a = f.speed(1234.5);
        let b = f.speed(1234.5);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(f.misses(), 1);
        assert_eq!(f.hits(), 1);
    }

    #[test]
    fn agrees_with_inner_function() {
        let inner = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        let f = CachedSpeed::new(inner.clone());
        for k in 0..200 {
            let x = 10f64.powf(k as f64 * 0.04);
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
            // Second round: every probe must come from the cache.
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
        }
        assert_eq!(f.misses(), 200);
        assert_eq!(f.hits(), 200);
    }

    #[test]
    fn time_goes_through_the_cache() {
        let f = CachedSpeed::new(AnalyticSpeed::constant(100.0));
        let _ = f.time(50.0);
        let _ = f.time(50.0);
        assert_eq!(f.misses(), 1);
        assert_eq!(f.hits(), 1);
    }

    #[test]
    fn forwards_structure_queries() {
        let inner =
            PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (1000.0, 50.0)]).unwrap();
        let f = CachedSpeed::new(inner.clone());
        assert_eq!(f.max_size(), inner.max_size());
        assert_eq!(f.intersect_slope(1e-3), inner.intersect_slope(1e-3));
    }

    #[test]
    fn clear_resets_counters() {
        let f = CachedSpeed::new(AnalyticSpeed::constant(10.0));
        let _ = f.speed(1.0);
        let _ = f.speed(1.0);
        f.clear();
        assert_eq!(f.hits(), 0);
        assert_eq!(f.misses(), 0);
        let _ = f.speed(1.0);
        assert_eq!(f.misses(), 1);
    }

    #[test]
    fn shared_cache_agrees_with_inner_bit_exactly() {
        let inner = AnalyticSpeed::unimodal(250.0, 1e4, 5e6, 2.0);
        let f = SharedCachedSpeed::new(inner.clone());
        for k in 0..200 {
            let x = 10f64.powf(k as f64 * 0.04);
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
            assert_eq!(f.speed(x).to_bits(), inner.speed(x).to_bits());
        }
        assert_eq!(f.misses(), 200);
        assert_eq!(f.hits(), 200);
        f.clear();
        assert_eq!(f.hits() + f.misses(), 0);
    }

    #[test]
    fn shared_cache_is_consistent_under_concurrent_probes() {
        use std::sync::Arc;
        let f = Arc::new(SharedCachedSpeed::new(AnalyticSpeed::decreasing(200.0, 1e6, 2.0)));
        let expected: Vec<u64> =
            (0..64).map(|k| f.inner().speed(1.5f64 * k as f64 + 1.0).to_bits()).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for round in 0..8 {
                        for (k, &bits) in expected.iter().enumerate() {
                            let x = 1.5f64 * k as f64 + 1.0;
                            assert_eq!(f.speed(x).to_bits(), bits, "round {round} x {x}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every probe is either a hit or a miss; all 4·8·64 accounted for.
        assert_eq!(f.hits() + f.misses(), 4 * 8 * 64);
        assert!(f.misses() >= 64, "each distinct abscissa missed at least once");
    }

    #[test]
    fn shared_cache_forwards_structure_queries() {
        let inner = PiecewiseLinearSpeed::new(vec![(10.0, 100.0), (1000.0, 50.0)]).unwrap();
        let f = SharedCachedSpeed::new(inner.clone());
        assert_eq!(f.max_size(), inner.max_size());
        assert_eq!(f.intersect_slope(1e-3), inner.intersect_slope(1e-3));
    }

    /// Compile-time audit of the `Send + Sync` surface: everything a
    /// server-style registry shares across threads via `Arc` must be
    /// `Send + Sync`, and the single-threaded [`CachedSpeed`] must *not*
    /// be (its `RefCell` interior is the documented design).
    #[test]
    fn send_sync_surface_is_as_documented() {
        use crate::speed::{ConstantSpeed, ScaledSpeed};
        use std::sync::Arc;

        fn assert_send_sync<T: Send + Sync>() {}

        assert_send_sync::<ConstantSpeed>();
        assert_send_sync::<AnalyticSpeed>();
        assert_send_sync::<PiecewiseLinearSpeed>();
        assert_send_sync::<ScaledSpeed<PiecewiseLinearSpeed>>();
        assert_send_sync::<SharedCachedSpeed<PiecewiseLinearSpeed>>();
        assert_send_sync::<SharedCachedSpeed<Box<dyn SpeedFunction + Send + Sync>>>();
        // The shape a registry actually stores: shared, dynamically typed.
        assert_send_sync::<Arc<dyn SpeedFunction + Send + Sync>>();
        assert_send_sync::<Vec<Arc<dyn SpeedFunction + Send + Sync>>>();
        // And Arc<dyn …> still implements SpeedFunction (blanket impl).
        fn assert_speed_function<T: SpeedFunction>() {}
        assert_speed_function::<Arc<dyn SpeedFunction + Send + Sync>>();
        assert_speed_function::<SharedCachedSpeed<Arc<dyn SpeedFunction + Send + Sync>>>();
    }
}
