//! Bench of the §3.1 model-building procedure: measurement counts are the
//! real cost in deployment; this bench tracks the computational overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpm_core::speed::builder::{build_speed_band, BuilderConfig};
use fpm_core::speed::SpeedFunction;
use fpm_simnet::profile::AppProfile;
use fpm_simnet::speed_model::MachineSpeed;
use fpm_simnet::testbeds;
use std::hint::black_box;

fn bench_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_builder");
    let specs = testbeds::table2();
    for (idx, name) in [(0usize, "X1"), (2, "X3"), (9, "X10")] {
        let truth = MachineSpeed::for_app(&specs[idx], AppProfile::MatrixMult);
        let (a, b) = truth.model_interval();
        group.bench_with_input(BenchmarkId::from_parameter(name), &truth, |bench, truth| {
            bench.iter(|| {
                let mut oracle = |x: f64| truth.speed(x);
                let out =
                    build_speed_band(&mut oracle, a, b, BuilderConfig::default()).unwrap();
                black_box(out.measurements)
            })
        });
    }
    group.finish();
}

fn bench_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("builder_epsilon");
    let specs = testbeds::table2();
    let truth = MachineSpeed::for_app(&specs[7], AppProfile::MatrixMult);
    let (a, b) = truth.model_interval();
    for eps in [0.02f64, 0.05, 0.20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{eps}")),
            &eps,
            |bench, &eps| {
                let cfg = BuilderConfig {
                    epsilon: eps,
                    max_measurements: 256,
                    ..BuilderConfig::default()
                };
                bench.iter(|| {
                    let mut oracle = |x: f64| truth.speed(x);
                    black_box(build_speed_band(&mut oracle, a, b, cfg).unwrap().measurements)
                })
            },
        );
    }
    group.finish();
}

/// Whole-cluster build: the persistent worker pool against the sequential
/// per-machine loop of the seed.
fn bench_cluster_build(c: &mut Criterion) {
    use fpm_exec::model_build::{build_cluster_models, build_cluster_models_seq};
    use fpm_simnet::fluctuation::Integration;

    let mut group = c.benchmark_group("cluster_build");
    group.sample_size(10);
    let specs = testbeds::table2();
    group.bench_with_input(BenchmarkId::from_parameter("pooled"), &specs, |bench, specs| {
        bench.iter(|| {
            let built = build_cluster_models(
                specs,
                AppProfile::MatrixMult,
                Integration::Low,
                42,
                BuilderConfig::default(),
            )
            .unwrap();
            black_box(built.total_measurements())
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &specs, |bench, specs| {
        bench.iter(|| {
            let built = build_cluster_models_seq(
                specs,
                AppProfile::MatrixMult,
                Integration::Low,
                42,
                BuilderConfig::default(),
            )
            .unwrap();
            black_box(built.total_measurements())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_builder, bench_epsilon_sweep, bench_cluster_build);
criterion_main!(benches);
