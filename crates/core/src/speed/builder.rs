//! Building piece-wise linear speed functions from live measurements.
//!
//! Implements the practical procedure of paper §3.1 (Figs. 14, 19, 20): an
//! adaptive approximation of the performance *band* of a processor built
//! from a small set of experimentally obtained points.
//!
//! The procedure starts from the interval `[a, b]` — `a` being a problem
//! size fitting in the top level of the memory hierarchy and `b` a size
//! large enough that the speed is practically zero (main memory + swap
//! exhausted) — with an initial band linearly connecting
//! `(a, s_a ± ε·s_a)` to `(b, 0)…(b, ε)`. Each interval is then
//! **trisected** (bisection can be fooled: a measured point may fall on the
//! chord *by accident*, Fig. 19c, whereas by the shape assumption two
//! interior points cannot both lie on the chord of a curved piece), the two
//! interior points are measured, and:
//!
//! * if both measurements fall inside the current ε-band, the linear piece
//!   is accepted (case *a*);
//! * otherwise the out-of-band points become new knots and the procedure
//!   recurses into the sub-intervals, skipping sub-intervals whose measured
//!   endpoint already agrees with the neighbouring accepted value within ε
//!   (cases *b*–*d*).
//!
//! In the paper's experiments an acceptance band of ±5 % and about five
//! experimental points per processor sufficed.

use super::band::{BandPoint, SpeedBand};
use super::piecewise::PiecewiseLinearSpeed;
use crate::error::{Error, Result};

/// Source of experimental speed measurements.
///
/// `measure(x)` runs (or simulates) the application on a problem of size
/// `x` and returns the observed absolute speed. Measurements are the
/// expensive operation the builder tries to minimise.
pub trait Measurer {
    /// Measures the absolute speed at problem size `x`.
    fn measure(&mut self, x: f64) -> f64;
}

impl<F: FnMut(f64) -> f64> Measurer for F {
    fn measure(&mut self, x: f64) -> f64 {
        self(x)
    }
}

/// Configuration of the band-building procedure.
#[derive(Debug, Clone, Copy)]
pub struct BuilderConfig {
    /// Relative half-acceptance band (the paper uses ±5 %, i.e. `0.05`).
    pub epsilon: f64,
    /// Smallest interval length the builder will subdivide, as a fraction
    /// of `b − a`. Guards against unbounded recursion on noisy measurers.
    pub min_interval_fraction: f64,
    /// Hard ceiling on the number of measurements.
    pub max_measurements: usize,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self { epsilon: 0.05, min_interval_fraction: 1.0 / 729.0, max_measurements: 64 }
    }
}

impl BuilderConfig {
    fn validate(&self) -> Result<()> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(Error::InvalidParameter("epsilon must be in (0, 1)"));
        }
        if !(self.min_interval_fraction > 0.0 && self.min_interval_fraction < 1.0) {
            return Err(Error::InvalidParameter("min_interval_fraction must be in (0, 1)"));
        }
        if self.max_measurements < 3 {
            return Err(Error::InvalidParameter("max_measurements must be at least 3"));
        }
        Ok(())
    }
}

/// Result of building a speed model from measurements.
#[derive(Debug, Clone)]
pub struct BuildOutcome {
    /// The mid-line piece-wise linear speed function (what the partitioning
    /// algorithms consume).
    pub midline: PiecewiseLinearSpeed,
    /// The ε-band around the accepted knots.
    pub band: SpeedBand,
    /// All experimentally measured points `(size, speed)`, in measurement
    /// order (diagnostics; includes points that did not become knots).
    pub measured: Vec<(f64, f64)>,
    /// Number of measurements taken.
    pub measurements: usize,
    /// Estimated measurement cost in normalised work units (`Σ x/s(x)`,
    /// i.e. seconds under a one-work-unit-per-element workload) — the
    /// quantity the paper weighs against application execution times. For
    /// super-linear kernels (MM, LU) the true wall-clock cost additionally
    /// scales with the per-size flop count.
    pub cost_seconds: f64,
    /// Knots that were dropped to restore the single-intersection property
    /// (only non-empty for noisy measurers).
    pub repaired: usize,
}

struct BuildState<'m, M: Measurer> {
    measurer: &'m mut M,
    cfg: BuilderConfig,
    min_len: f64,
    zero_floor: f64,
    knots: Vec<(f64, f64)>,
    measured: Vec<(f64, f64)>,
    cost: f64,
}

impl<M: Measurer> BuildState<'_, M> {
    fn take(&mut self, x: f64) -> f64 {
        let s = self.measurer.measure(x).max(0.0);
        self.measured.push((x, s));
        // Cost of the experiment: executing the problem of size x once.
        self.cost += x / s.max(1e-9);
        s
    }

    fn within(&self, measured: f64, reference: f64) -> bool {
        let tol = (self.cfg.epsilon * reference.abs()).max(self.zero_floor);
        (measured - reference).abs() <= tol
    }

    fn budget_left(&self) -> bool {
        self.measured.len() + 2 <= self.cfg.max_measurements
    }

    /// Recursive trisection over `[l, r]` with accepted endpoint speeds
    /// `(s_l, s_r)`.
    fn refine(&mut self, l: f64, r: f64, s_l: f64, s_r: f64) {
        if r - l <= self.min_len || !self.budget_left() {
            return;
        }
        let x1 = l + (r - l) / 3.0;
        let x2 = l + 2.0 * (r - l) / 3.0;
        let m1 = self.take(x1);
        let m2 = self.take(x2);
        // Projection of the current linear approximation at the trisection
        // points.
        let proj = |x: f64| s_l + (x - l) / (r - l) * (s_r - s_l);
        let in1 = self.within(m1, proj(x1));
        let in2 = self.within(m2, proj(x2));
        if in1 && in2 {
            // Case (a): the current band already contains both experimental
            // points — accept the linear piece as final.
            return;
        }
        // Cases (b)–(d): out-of-band points become knots; recurse into
        // sub-intervals, skipping those whose new endpoint agrees with the
        // neighbouring accepted speed within ε.
        self.knots.push((x1, m1));
        self.knots.push((x2, m2));
        let near_l = self.within(m1, s_l);
        let near_r = self.within(m2, s_r);
        if !near_l {
            self.refine(l, x1, s_l, m1);
        }
        self.refine(x1, x2, m1, m2);
        if !near_r {
            self.refine(x2, r, m2, s_r);
        }
    }
}

/// Drops knots that violate the strict decrease of `s(x)/x`, keeping the
/// earliest knot of every violating pair. A knot with zero speed terminates
/// the model (the machine cannot solve larger problems), so anything after
/// the first zero is dropped too. Returns the number dropped.
///
/// Public so that external measurement pipelines (e.g. host calibration in
/// `fpm-cli`) can sanitise raw measurements into a valid
/// [`PiecewiseLinearSpeed`]; `points` must already be sorted by size.
pub fn repair_shape(points: &mut Vec<(f64, f64)>) -> usize {
    let before = points.len();
    let mut kept: Vec<(f64, f64)> = Vec::with_capacity(points.len());
    for &(x, s) in points.iter() {
        if let Some(&(px, ps)) = kept.last() {
            if ps == 0.0 {
                break;
            }
            if s / x >= ps / px {
                continue;
            }
        }
        kept.push((x, s));
    }
    let dropped = before - kept.len();
    *points = kept;
    dropped
}

/// Builds the piece-wise linear approximation of a processor's performance
/// band over `[a, b]` (paper §3.1).
///
/// * `a` — problem size fitting in the top level of the memory hierarchy;
/// * `b` — size at which the speed is practically zero (the builder anchors
///   `s(b) = 0` without measuring, exactly as the paper assumes);
/// * `measurer` — the experimental oracle.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a degenerate interval or config,
/// and [`Error::InvalidSpeedFunction`] if the (possibly noisy) measurements
/// cannot be repaired into a valid model.
pub fn build_speed_band<M: Measurer>(
    measurer: &mut M,
    a: f64,
    b: f64,
    cfg: BuilderConfig,
) -> Result<BuildOutcome> {
    cfg.validate()?;
    if !(a.is_finite() && b.is_finite() && a > 0.0 && b > a) {
        return Err(Error::InvalidParameter("need 0 < a < b, both finite"));
    }
    let mut state = BuildState {
        measurer,
        cfg,
        min_len: (b - a) * cfg.min_interval_fraction,
        zero_floor: 0.0,
        knots: Vec::new(),
        measured: Vec::new(),
        cost: 0.0,
    };
    let s_a = state.take(a);
    if s_a <= 0.0 {
        return Err(Error::InvalidParameter("speed at the left anchor a must be positive"));
    }
    // Absolute tolerance near the right anchor, where the reference speed
    // approaches zero (the paper's (b, ε) corner).
    state.zero_floor = cfg.epsilon * s_a * 0.05;
    state.knots.push((a, s_a));
    state.knots.push((b, 0.0));
    state.refine(a, b, s_a, 0.0);

    let mut points = state.knots.clone();
    points.sort_by(|p, q| p.0.partial_cmp(&q.0).expect("finite"));
    points.dedup_by(|p, q| p.0 == q.0);
    let repaired = repair_shape(&mut points);
    let midline = PiecewiseLinearSpeed::new(points.clone()).map_err(|_| {
        Error::InvalidSpeedFunction {
            processor: usize::MAX,
            reason: "measurements could not be repaired into a valid model",
        }
    })?;
    let band = SpeedBand::from_points(
        points
            .iter()
            .map(|&(x, s)| BandPoint {
                x,
                lo: (s * (1.0 - cfg.epsilon)).max(0.0),
                hi: s * (1.0 + cfg.epsilon) + state.zero_floor,
            })
            .collect(),
    )?;
    let measurements = state.measured.len();
    Ok(BuildOutcome {
        midline,
        band,
        measured: state.measured,
        measurements,
        cost_seconds: state.cost,
        repaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::analytic::AnalyticSpeed;
    use crate::speed::function::SpeedFunction;

    fn build_from<F: SpeedFunction>(f: &F, a: f64, b: f64, cfg: BuilderConfig) -> BuildOutcome {
        let mut oracle = |x: f64| f.speed(x);
        build_speed_band(&mut oracle, a, b, cfg).unwrap()
    }

    #[test]
    fn linear_function_needs_few_points() {
        // A function whose graph is exactly the initial chord is accepted
        // after the first two trisection measurements: 3 points total.
        let a = 1e3;
        let b = 1e7;
        struct Chord {
            a: f64,
            b: f64,
            s_a: f64,
        }
        impl SpeedFunction for Chord {
            fn speed(&self, x: f64) -> f64 {
                (self.s_a * (self.b - x) / (self.b - self.a)).max(0.0)
            }
        }
        let f = Chord { a, b, s_a: 100.0 };
        let out = build_from(&f, a, b, BuilderConfig::default());
        assert_eq!(out.measurements, 3, "a + two trisection points");
        assert_eq!(out.repaired, 0);
    }

    #[test]
    fn smooth_decreasing_function_few_points_within_epsilon() {
        let f = AnalyticSpeed::decreasing(200.0, 2e6, 2.0);
        let out = build_from(&f, 1e4, 5e7, BuilderConfig::default());
        // Frugality: the default measurement budget must not be exhausted.
        assert!(out.measurements < 64, "took {} measurements", out.measurements);
        // Midline accuracy within a loose multiple of epsilon at interior
        // sizes away from the anchors.
        for &x in &[5e5, 1e6, 5e6, 2e7] {
            let approx = out.midline.speed(x);
            let truth = f.speed(x);
            assert!(
                (approx - truth).abs() <= 0.15 * truth + 1.0,
                "at {x}: approx {approx} vs truth {truth}"
            );
        }
    }

    #[test]
    fn wider_acceptance_band_needs_fewer_points() {
        let f = AnalyticSpeed::decreasing(200.0, 2e6, 2.0);
        let tight = build_from(&f, 1e4, 5e7, BuilderConfig::default());
        let loose = build_from(
            &f,
            1e4,
            5e7,
            BuilderConfig { epsilon: 0.20, ..BuilderConfig::default() },
        );
        assert!(
            loose.measurements < tight.measurements,
            "loose {} vs tight {}",
            loose.measurements,
            tight.measurements
        );
    }

    #[test]
    fn paging_knee_is_captured() {
        let f = AnalyticSpeed::paging(250.0, 1e6, 3.0);
        let out = build_from(&f, 1e4, 2e7, BuilderConfig::default());
        // Before the knee the model must report near-peak speed; after it a
        // collapsed speed.
        assert!(out.midline.speed(5e5) > 200.0);
        assert!(out.midline.speed(1.5e7) < 50.0);
    }

    #[test]
    fn measurement_budget_is_respected() {
        let f = AnalyticSpeed::unimodal(300.0, 5e4, 2e6, 2.0);
        let cfg = BuilderConfig { max_measurements: 9, ..BuilderConfig::default() };
        let out = build_from(&f, 1e4, 5e7, cfg);
        assert!(out.measurements <= 9);
    }

    #[test]
    fn cost_accumulates_execution_times() {
        let f = AnalyticSpeed::constant(100.0);
        let out = build_from(&f, 1e3, 1e6, BuilderConfig::default());
        // Each measurement of size x costs x/100 seconds; the anchor alone
        // costs 10 s.
        assert!(out.cost_seconds >= 1e3 / 100.0);
        assert!(out.cost_seconds.is_finite());
    }

    #[test]
    fn noisy_measurer_is_repaired_to_valid_model() {
        let truth = AnalyticSpeed::decreasing(150.0, 1e6, 2.0);
        let mut flip = 1.0_f64;
        let mut noisy = |x: f64| {
            flip = -flip;
            truth.speed(x) * (1.0 + 0.04 * flip)
        };
        let out = build_speed_band(&mut noisy, 1e4, 1e8, BuilderConfig::default()).unwrap();
        // The produced model must satisfy the shape requirement regardless
        // of noise.
        use crate::speed::function::check_single_intersection;
        assert!(check_single_intersection(&out.midline, 1e4, 9e7, 300).is_ok());
    }

    #[test]
    fn rejects_bad_interval_and_config() {
        let mut m = |_x: f64| 1.0;
        assert!(build_speed_band(&mut m, 10.0, 10.0, BuilderConfig::default()).is_err());
        assert!(build_speed_band(&mut m, -1.0, 10.0, BuilderConfig::default()).is_err());
        let bad = BuilderConfig { epsilon: 0.0, ..BuilderConfig::default() };
        assert!(build_speed_band(&mut m, 1.0, 10.0, bad).is_err());
        let mut dead = |_x: f64| 0.0;
        assert!(
            build_speed_band(&mut dead, 1.0, 10.0, BuilderConfig::default()).is_err(),
            "zero speed at the anchor is rejected"
        );
    }

    #[test]
    fn band_contains_midline() {
        let f = AnalyticSpeed::unimodal(300.0, 5e4, 2e6, 2.0);
        let out = build_from(&f, 1e4, 5e7, BuilderConfig::default());
        for &x in &[1e5, 1e6, 1e7] {
            assert!(out.band.lower(x) <= out.midline.speed(x) + 1e-9);
            assert!(out.band.upper(x) >= out.midline.speed(x) - 1e-9);
        }
    }
}
